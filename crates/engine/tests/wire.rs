//! Wire-protocol tests: roundtrips (fuzz-style via the proptest shim),
//! malformed/truncated frame rejection, the byte-exact worked example
//! from `docs/PROTOCOL.md`, and the server loop end-to-end over
//! in-memory streams.

use pir_core::{PrivIncReg1Config, PrivIncReg2Config, TauRule};
use pir_dp::PrivacyParams;
use pir_engine::wire::{
    self, decode_command, decode_reply, encode_command, encode_reply, read_command, read_reply,
    WireError, HEADER_LEN,
};
use pir_engine::{
    serve_connection, Command, EngineError, EngineHandle, IngressConfig, LossSpec, MechanismSpec,
    Reply, SetSpec, SolverSpec,
};
use pir_erm::DataPoint;
use proptest::prelude::*;

fn params() -> PrivacyParams {
    PrivacyParams::approx(1.0, 1e-6).unwrap()
}

/// Build one of the encodable spec shapes from fuzz inputs.
fn spec_from(tag: usize, dim: usize, radius: f64) -> MechanismSpec {
    let set = match tag % 4 {
        0 => SetSpec::L2Ball { dim, radius },
        1 => SetSpec::L1Ball { dim, radius },
        2 => SetSpec::LinfBall { dim, radius },
        _ => SetSpec::Simplex { dim, scale: radius },
    };
    match tag % 5 {
        0 => MechanismSpec::Erm {
            set,
            loss: match tag % 3 {
                0 => LossSpec::Squared,
                1 => LossSpec::Logistic,
                _ => LossSpec::RegularizedSquared { lambda: radius },
            },
            solver: match tag % 3 {
                0 => SolverSpec::NoisyGd { iters: dim + 1, beta: 0.1 },
                1 => SolverSpec::OutputPerturbation { exact_iters: dim + 2 },
                _ => SolverSpec::FrankWolfe { iters: dim + 3 },
            },
            tau: match tag % 4 {
                0 => TauRule::Fixed(dim + 1),
                1 => TauRule::Convex,
                2 => TauRule::StronglyConvex,
                _ => TauRule::LowWidth,
            },
        },
        1 => MechanismSpec::Reg1 {
            set,
            config: PrivIncReg1Config {
                beta: radius / 10.0,
                max_pgd_iters: dim + 5,
                warm_start: tag.is_multiple_of(2),
                ..Default::default()
            },
        },
        2 => MechanismSpec::Reg2 {
            set,
            domain_width: radius + 1.0,
            config: PrivIncReg2Config {
                gamma: tag.is_multiple_of(2).then_some(radius / 8.0),
                m_override: tag.is_multiple_of(3).then_some(dim + 2),
                lift_iters: dim + 9,
                ..Default::default()
            },
        },
        3 => MechanismSpec::Trivial { set },
        _ => MechanismSpec::ExactOracle { set },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Commands survive an encode → decode roundtrip exactly. (Specs
    /// carry no `Eq`; the Debug rendering prints every field with f64
    /// shortest-roundtrip precision, so string equality is field
    /// equality.)
    #[test]
    fn command_roundtrip(
        tag in 0usize..60,
        sid in any::<u64>(),
        dim in 1usize..9,
        radius in 0.25f64..4.0,
        t_max in 1usize..1000,
        n_points in 0usize..5,
        coord in -0.9f64..0.9,
    ) {
        let point = DataPoint::new(vec![coord; dim], coord / 2.0);
        let commands = vec![
            Command::Open {
                session_id: sid,
                spec: spec_from(tag, dim, radius),
                t_max,
                params: params(),
            },
            Command::Observe { session_id: sid, point: point.clone() },
            Command::ObserveBatch { session_id: sid, points: vec![point; n_points] },
            Command::Release { session_id: sid },
            Command::Close,
        ];
        for cmd in &commands {
            let bytes = encode_command(cmd).unwrap();
            let back = decode_command(&bytes).unwrap();
            prop_assert_eq!(format!("{cmd:?}"), format!("{back:?}"));
        }
    }

    /// Replies survive an encode → decode roundtrip exactly.
    #[test]
    fn reply_roundtrip(
        sid in any::<u64>(),
        dim in 1usize..9,
        n in 0usize..4,
        v in -2.0f64..2.0,
        pts in 0usize..50,
    ) {
        let replies = vec![
            Reply::Opened { session_id: sid },
            Reply::Releases { session_id: sid, thetas: vec![vec![v; dim]; n] },
            Reply::SessionReleased {
                session_id: sid,
                points: pts as u64,
                epsilon_spent: v.abs(),
                delta_spent: 1e-6,
            },
            Reply::Closed,
            Reply::Err(EngineError::UnknownSession { id: sid }),
            Reply::Err(EngineError::DuplicateSession { id: sid }),
            Reply::Err(EngineError::InvalidConfig { reason: format!("bad {v}") }),
            Reply::Err(EngineError::Mechanism { reason: format!("mech {v}") }),
            Reply::Err(EngineError::Budget { reason: "over".to_string() }),
            Reply::Err(EngineError::Backpressure { shard: n, depth: pts, capacity: dim, cost: 1 }),
            Reply::Err(EngineError::CommandTooLarge { shard: n, cost: pts, capacity: dim }),
            Reply::Err(EngineError::Closed),
        ];
        for reply in &replies {
            let bytes = encode_reply(reply).unwrap();
            let back = decode_reply(&bytes).unwrap();
            prop_assert_eq!(reply, &back);
        }
    }

    /// Every strict prefix of a valid frame is rejected as truncated —
    /// never mis-decoded, never accepted.
    #[test]
    fn truncated_frames_are_rejected(cut in 0usize..48) {
        let cmd = Command::Observe {
            session_id: 7,
            point: DataPoint::new(vec![0.5, 0.25], 0.125),
        };
        let bytes = encode_command(&cmd).unwrap();
        prop_assert!(cut < bytes.len());
        let truncated = &bytes[..cut];
        match decode_command(truncated) {
            Err(WireError::Truncated { .. }) => {}
            other => prop_assert!(false, "prefix of len {} gave {:?}", cut, other),
        }
    }
}

#[test]
fn worked_example_bytes_match_protocol_md() {
    // The byte-level example in docs/PROTOCOL.md, pinned exactly:
    // Observe { session_id: 7, point: { x: [0.5, 0.25], y: 0.125 } }.
    let cmd = Command::Observe { session_id: 7, point: DataPoint::new(vec![0.5, 0.25], 0.125) };
    let bytes = encode_command(&cmd).unwrap();
    #[rustfmt::skip]
    let expected: Vec<u8> = vec![
        // header
        0x50, 0x49, 0x52, 0x57,                         // magic "PIRW"
        0x01,                                           // version 1
        0x02,                                           // opcode OBSERVE
        0x00, 0x00,                                     // reserved
        0x24, 0x00, 0x00, 0x00,                         // payload length 36
        // payload
        0x07, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // session id 7
        0x02, 0x00, 0x00, 0x00,                         // dim 2
        0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xE0, 0x3F, // x[0] = 0.5
        0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xD0, 0x3F, // x[1] = 0.25
        0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xC0, 0x3F, // y    = 0.125
    ];
    assert_eq!(bytes, expected);
}

#[test]
fn malformed_frames_are_rejected_distinctly() {
    let valid = encode_command(&Command::Release { session_id: 1 }).unwrap();

    // Bad magic.
    let mut bad = valid.clone();
    bad[0] = b'X';
    assert!(matches!(decode_command(&bad), Err(WireError::BadMagic(_))));

    // Unsupported version.
    let mut bad = valid.clone();
    bad[4] = 2;
    assert!(matches!(decode_command(&bad), Err(WireError::UnsupportedVersion(2))));

    // Unknown opcode (and a reply opcode on the command channel).
    let mut bad = valid.clone();
    bad[5] = 0x6E;
    assert!(matches!(decode_command(&bad), Err(WireError::UnknownOpcode(0x6E))));
    let reply_frame = encode_reply(&Reply::Closed).unwrap();
    assert!(matches!(decode_command(&reply_frame), Err(WireError::UnknownOpcode(0x85))));

    // Non-zero reserved bytes.
    let mut bad = valid.clone();
    bad[6] = 1;
    assert!(matches!(decode_command(&bad), Err(WireError::NonZeroReserved(1))));

    // Length field pointing past the payload cap.
    let mut bad = valid.clone();
    bad[8..12].copy_from_slice(&(wire::MAX_PAYLOAD + 1).to_le_bytes());
    assert!(matches!(
        decode_command(&bad),
        Err(WireError::FrameTooLarge { len }) if len == wire::MAX_PAYLOAD + 1
    ));

    // Payload longer than the opcode's encoding consumes.
    let mut bad = valid.clone();
    bad.push(0xAB);
    bad[8..12].copy_from_slice(&9u32.to_le_bytes());
    assert!(matches!(decode_command(&bad), Err(WireError::TrailingBytes { extra: 1 })));

    // Bad tag inside a structurally complete payload.
    let open = encode_command(&Command::Open {
        session_id: 1,
        spec: MechanismSpec::reg1_l2(2),
        t_max: 8,
        params: params(),
    })
    .unwrap();
    let mut bad = open.clone();
    let spec_tag_offset = HEADER_LEN + 8 + 8 + 16; // sid + t_max + params
    bad[spec_tag_offset] = 9;
    assert!(matches!(decode_command(&bad), Err(WireError::Malformed(_))));

    // Invalid privacy parameters are a payload error, not a panic.
    let mut bad = open;
    let eps_offset = HEADER_LEN + 16;
    bad[eps_offset..eps_offset + 8].copy_from_slice(&(-1.0f64).to_le_bytes());
    assert!(matches!(decode_command(&bad), Err(WireError::Malformed(_))));
}

#[test]
fn custom_set_factories_are_unencodable() {
    use std::sync::Arc;
    let spec = MechanismSpec::Trivial {
        set: SetSpec::Custom(Arc::new(|| {
            Box::new(pir_geometry::L2Ball::unit(2)) as Box<dyn pir_geometry::ConvexSet>
        })),
    };
    let cmd = Command::Open { session_id: 1, spec, t_max: 8, params: params() };
    assert!(matches!(encode_command(&cmd), Err(WireError::Unencodable(_))));
}

#[test]
fn hostile_element_counts_cannot_force_huge_allocations() {
    // A structurally valid header whose payload *claims* u32::MAX points
    // (or a u32::MAX-dimensional point / release) but carries almost no
    // bytes. Decoding must fail as Truncated without ever allocating
    // for the claimed count — this is what keeps the 64 MiB frame cap an
    // actual memory bound.
    let mut frame = vec![];
    frame.extend_from_slice(b"PIRW");
    frame.push(1); // version
    frame.push(0x03); // OBSERVE_BATCH
    frame.extend_from_slice(&[0, 0]); // reserved
    let payload: Vec<u8> =
        [7u64.to_le_bytes().as_slice(), u32::MAX.to_le_bytes().as_slice()].concat();
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&payload);
    assert!(matches!(decode_command(&frame), Err(WireError::Truncated { .. })));

    // Same shape on the reply channel: RELEASES claiming u32::MAX thetas.
    let mut frame = vec![];
    frame.extend_from_slice(b"PIRW");
    frame.push(1);
    frame.push(0x82); // R_RELEASES
    frame.extend_from_slice(&[0, 0]);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&payload);
    assert!(matches!(decode_reply(&frame), Err(WireError::Truncated { .. })));

    // And a single point claiming a u32::MAX dimension.
    let mut frame = vec![];
    frame.extend_from_slice(b"PIRW");
    frame.push(1);
    frame.push(0x02); // OBSERVE
    frame.extend_from_slice(&[0, 0]);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&payload);
    assert!(matches!(decode_command(&frame), Err(WireError::Truncated { .. })));
}

#[test]
fn stream_reader_distinguishes_eof_from_truncation() {
    let frame = encode_command(&Command::Release { session_id: 3 }).unwrap();

    // Clean EOF between frames → None.
    let mut empty: &[u8] = &[];
    assert!(read_command(&mut empty).unwrap().is_none());

    // Two whole frames read back-to-back.
    let mut two = Vec::new();
    two.extend_from_slice(&frame);
    two.extend_from_slice(&frame);
    let mut r: &[u8] = &two;
    assert!(read_command(&mut r).unwrap().is_some());
    assert!(read_command(&mut r).unwrap().is_some());
    assert!(read_command(&mut r).unwrap().is_none());

    // EOF mid-frame → Truncated, not None.
    let mut cut: &[u8] = &frame[..frame.len() - 2];
    assert!(matches!(read_command(&mut cut), Err(WireError::Truncated { .. })));
}

#[test]
fn server_loop_matches_direct_engine_over_in_memory_streams() {
    // A full client conversation rendered to bytes, served, and checked
    // against the direct (unpipelined) engine.
    let seed = 4242;
    let d = 3;
    let spec = MechanismSpec::reg1_l2(d);
    let pt = |t: usize| {
        let mut x = vec![0.0; d];
        x[t % d] = 0.7;
        DataPoint::new(x, 0.2)
    };

    let mut request = Vec::new();
    let commands = vec![
        Command::Open { session_id: 1, spec: spec.clone(), t_max: 16, params: params() },
        Command::Open { session_id: 2, spec: spec.clone(), t_max: 16, params: params() },
        Command::Observe { session_id: 1, point: pt(0) },
        Command::ObserveBatch { session_id: 2, points: vec![pt(0), pt(1)] },
        Command::Observe { session_id: 99, point: pt(0) }, // unknown → error reply
        Command::Release { session_id: 1 },
        Command::Close,
    ];
    for cmd in &commands {
        wire::write_command(&mut request, cmd).unwrap();
    }

    let handle = EngineHandle::new(IngressConfig { num_shards: 2, seed, queue_depth: 64 }).unwrap();
    let mut reader: &[u8] = &request;
    let mut response = Vec::new();
    let stats = serve_connection(&handle, &mut reader, &mut response).unwrap();
    assert_eq!(stats.commands, commands.len());
    assert_eq!(stats.replies, commands.len());
    handle.close();

    // Decode the reply stream (strictly one reply per command, in order).
    let mut replies = Vec::new();
    let mut r: &[u8] = &response;
    while let Some(reply) = read_reply(&mut r).unwrap() {
        replies.push(reply);
    }
    assert_eq!(replies.len(), commands.len());

    // Expected releases from a direct engine with the same seed.
    let mut direct = pir_engine::ShardedEngine::new(pir_engine::EngineConfig {
        num_shards: 1,
        seed,
        parallel: false,
    })
    .unwrap();
    direct.spawn_sessions([1, 2], &spec, 16, &params()).unwrap();

    assert_eq!(replies[0], Reply::Opened { session_id: 1 });
    assert_eq!(replies[1], Reply::Opened { session_id: 2 });
    assert_eq!(
        replies[2],
        Reply::Releases { session_id: 1, thetas: vec![direct.observe(1, &pt(0)).unwrap()] }
    );
    assert_eq!(
        replies[3],
        Reply::Releases {
            session_id: 2,
            thetas: direct.observe_batch(2, &[pt(0), pt(1)]).unwrap()
        }
    );
    assert_eq!(replies[4], Reply::Err(EngineError::UnknownSession { id: 99 }));
    match &replies[5] {
        Reply::SessionReleased { session_id: 1, points: 1, .. } => {}
        other => panic!("expected SessionReleased for session 1, got {other:?}"),
    }
    assert_eq!(replies[6], Reply::Closed);
}

#[test]
fn server_survives_engine_errors_but_aborts_on_protocol_errors() {
    let handle =
        EngineHandle::new(IngressConfig { num_shards: 1, seed: 5, queue_depth: 2 }).unwrap();

    // An engine error (oversized batch → permanent too-large rejection)
    // is a reply, not a connection abort.
    let mut request = Vec::new();
    wire::write_command(
        &mut request,
        &Command::ObserveBatch {
            session_id: 1,
            points: (0..3).map(|_| DataPoint::new(vec![0.1], 0.0)).collect(),
        },
    )
    .unwrap();
    let mut reader: &[u8] = &request;
    let mut response = Vec::new();
    let stats = serve_connection(&handle, &mut reader, &mut response).unwrap();
    assert_eq!(stats, pir_engine::ServeStats { commands: 1, replies: 1 });
    let mut r: &[u8] = &response;
    match read_reply(&mut r).unwrap().unwrap() {
        Reply::Err(EngineError::CommandTooLarge { cost: 3, capacity: 2, .. }) => {}
        other => panic!("expected a too-large rejection reply, got {other:?}"),
    }

    // A protocol error (garbage bytes) aborts the connection.
    let mut garbage: &[u8] = b"NOT A FRAME AT ALL";
    let mut out = Vec::new();
    assert!(matches!(
        serve_connection(&handle, &mut garbage, &mut out),
        Err(WireError::BadMagic(_))
    ));
    handle.close();
}
