//! Integration tests for the sharded multi-stream engine: routing,
//! determinism under resharding, batched-ingest semantics, and privacy
//! accounting.

use pir_dp::PrivacyParams;
use pir_engine::{EngineConfig, EngineError, MechanismSpec, SetSpec, ShardedEngine};
use pir_erm::DataPoint;

fn params() -> PrivacyParams {
    PrivacyParams::approx(1.0, 1e-6).unwrap()
}

fn point(d: usize, t: usize, session: u64) -> DataPoint {
    // Deterministic, valid (‖x‖ ≤ 0.9) covariates varying by (session, t).
    let mut x = vec![0.0f64; d];
    x[t % d] = 0.6;
    x[(t + session as usize) % d] += 0.3;
    let y = (0.5 * x[0]).clamp(-1.0, 1.0);
    DataPoint::new(x, y)
}

#[test]
fn routing_and_bookkeeping() {
    let mut engine = ShardedEngine::with_shards(4).unwrap();
    let spec = MechanismSpec::reg1_l2(3);
    engine.spawn_sessions(0..32, &spec, 16, &params()).unwrap();
    assert_eq!(engine.session_count(), 32);
    assert_eq!(engine.shard_loads().iter().sum::<usize>(), 32);
    assert!(engine.contains(17));
    assert!(!engine.contains(99));

    let theta = engine.observe(5, &point(3, 0, 5)).unwrap();
    assert_eq!(theta.len(), 3);
    assert_eq!(engine.with_session(5, |s| s.t()).unwrap(), 1);
    assert_eq!(engine.total_points(), 1);

    assert!(matches!(
        engine.observe(99, &point(3, 0, 99)),
        Err(EngineError::UnknownSession { id: 99 })
    ));
    assert!(matches!(
        engine.spawn_session(5, &spec, 16, &params()),
        Err(EngineError::DuplicateSession { id: 5 })
    ));

    let removed = engine.remove_session(5).unwrap();
    assert_eq!(removed.t(), 1);
    assert!(!engine.contains(5));
    assert_eq!(engine.session_count(), 31);
}

#[test]
fn spawn_sessions_rejects_non_adjacent_duplicates_atomically() {
    let mut engine = ShardedEngine::with_shards(4).unwrap();
    let spec = MechanismSpec::reg1_l2(2);
    let err = engine.spawn_sessions([1, 2, 3, 1], &spec, 8, &params()).unwrap_err();
    assert!(matches!(err, EngineError::DuplicateSession { id: 1 }));
    // All-or-nothing: nothing was inserted.
    assert_eq!(engine.session_count(), 0);
}

#[test]
fn releases_are_invariant_under_resharding() {
    // The same fleet driven on 1 shard (sequential) and 5 shards
    // (parallel) must release identical estimator sequences: session
    // noise derives from (engine seed, session id) only.
    let run = |num_shards: usize, parallel: bool| -> Vec<Result<Vec<f64>, EngineError>> {
        let mut engine =
            ShardedEngine::new(EngineConfig { num_shards, seed: 42, parallel }).unwrap();
        let spec = MechanismSpec::reg1_l2(3);
        engine.spawn_sessions(0..12, &spec, 8, &params()).unwrap();
        let batch: Vec<(u64, DataPoint)> = (0..48)
            .map(|i| {
                let sid = (i % 12) as u64;
                (sid, point(3, i / 12, sid))
            })
            .collect();
        engine.ingest(batch)
    };
    let a = run(1, false);
    let b = run(5, true);
    assert_eq!(a, b);
}

#[test]
fn ingest_matches_direct_observation() {
    // Mixed-tenant ingest must equal driving each session directly, and
    // results must be index-aligned with the input.
    let seed = 3;
    let spec = MechanismSpec::reg2_l1(12, 2.0);
    let mut direct =
        ShardedEngine::new(EngineConfig { num_shards: 2, seed, parallel: false }).unwrap();
    let mut batched =
        ShardedEngine::new(EngineConfig { num_shards: 2, seed, parallel: true }).unwrap();
    for engine in [&mut direct, &mut batched] {
        engine.spawn_sessions([7, 8], &spec, 8, &params()).unwrap();
    }
    // Interleaved arrivals: 7, 8, 7, 8, ...
    let arrivals: Vec<(u64, DataPoint)> =
        (0..8).map(|t| (7 + (t % 2) as u64, point(12, t / 2, 7 + (t % 2) as u64))).collect();

    let expected: Vec<Vec<f64>> =
        arrivals.iter().map(|(sid, z)| direct.observe(*sid, z).unwrap()).collect();
    let got = batched.ingest(arrivals);
    for (e, g) in expected.iter().zip(&got) {
        assert_eq!(e, g.as_ref().unwrap());
    }
}

#[test]
fn ingest_reports_failures_per_point() {
    let mut engine = ShardedEngine::with_shards(2).unwrap();
    engine.spawn_session(1, &MechanismSpec::reg1_l2(2), 4, &params()).unwrap();
    let batch = vec![
        (1u64, DataPoint::new(vec![0.5, 0.0], 0.2)),
        (2u64, DataPoint::new(vec![0.5, 0.0], 0.2)), // unknown session
        (1u64, DataPoint::new(vec![0.5, 0.0], 0.2)),
    ];
    let out = engine.ingest(batch);
    assert!(out[0].is_ok());
    assert!(matches!(out[1], Err(EngineError::UnknownSession { id: 2 })));
    assert!(out[2].is_ok());
    assert_eq!(engine.with_session(1, |s| s.t()).unwrap(), 2);
}

#[test]
fn every_paper_mechanism_spawns_uniformly() {
    let d = 6;
    let specs = [
        MechanismSpec::erm_squared(d, pir_core::TauRule::Fixed(2)),
        MechanismSpec::reg1_l2(d),
        MechanismSpec::reg2_l1(d, 2.0),
        MechanismSpec::Trivial { set: SetSpec::unit_l2(d) },
        MechanismSpec::ExactOracle { set: SetSpec::unit_l2(d) },
    ];
    let mut engine = ShardedEngine::with_shards(3).unwrap();
    for (i, spec) in specs.iter().enumerate() {
        engine.spawn_session(i as u64, spec, 8, &params()).unwrap();
    }
    let batch: Vec<(u64, DataPoint)> =
        (0..specs.len() as u64).map(|sid| (sid, point(d, 0, sid))).collect();
    for (i, r) in engine.ingest(batch).iter().enumerate() {
        let theta = r.as_ref().unwrap_or_else(|e| panic!("spec {i} failed: {e}"));
        assert_eq!(theta.len(), d);
    }
}

#[test]
fn sessions_carry_charged_accountants() {
    let mut engine = ShardedEngine::with_shards(2).unwrap();
    engine.spawn_session(1, &MechanismSpec::reg1_l2(2), 4, &params()).unwrap();
    engine
        .spawn_session(2, &MechanismSpec::ExactOracle { set: SetSpec::unit_l2(2) }, 4, &params())
        .unwrap();
    // The private mechanism's whole budget is charged up front …
    let (eps, delta) = engine.with_session(1, |s| s.accountant().spent()).unwrap();
    assert!((eps - 1.0).abs() < 1e-12);
    assert!((delta - 1e-6).abs() < 1e-18);
    // … while the non-private oracle spends nothing.
    let (eps0, _) = engine.with_session(2, |s| s.accountant().spent()).unwrap();
    assert_eq!(eps0, 0.0);
}

#[test]
fn horizon_overflow_surfaces_as_mechanism_error() {
    let mut engine = ShardedEngine::with_shards(1).unwrap();
    engine.spawn_session(1, &MechanismSpec::reg1_l2(2), 2, &params()).unwrap();
    let run: Vec<DataPoint> = (0..3).map(|t| point(2, t, 1)).collect();
    // Three points against a horizon of 2: atomic rejection.
    assert!(matches!(engine.observe_batch(1, &run), Err(EngineError::Mechanism { .. })));
    assert_eq!(engine.with_session(1, |s| s.t()).unwrap(), 0);
    // Two fit fine.
    assert_eq!(engine.observe_batch(1, &run[..2]).unwrap().len(), 2);
}
