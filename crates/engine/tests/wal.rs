//! Writer-level unit tests for the write-ahead log: segment rotation,
//! epoch bumping across writer generations, retention (`purge`), option
//! validation, error rendering, and the byte-pinned worked example that
//! `docs/PROTOCOL.md` reproduces verbatim.
//!
//! Crash-recovery and fault-injection properties live in the root
//! `tests/recovery.rs` suite; this file pins the writer mechanics they
//! build on.

use std::path::PathBuf;

use pir_engine::wal::{
    self, decode_segment, purge, scan_segment, segment_file_name, FsyncPolicy, WalError,
    WalOptions, WalWriter, RECORD_OVERHEAD, SEGMENT_HEADER_LEN,
};
use pir_engine::{wire, Command};
use pir_erm::DataPoint;

struct TempDir(PathBuf);

impl TempDir {
    fn new(name: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("pir-wal-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn options(dir: &TempDir) -> WalOptions {
    let mut o = WalOptions::new(&dir.0);
    o.fsync = FsyncPolicy::Off;
    o
}

fn release(sid: u64) -> Command {
    Command::Release { session_id: sid }
}

fn observe(sid: u64) -> Command {
    Command::Observe { session_id: sid, point: DataPoint::new(vec![0.5, -0.25], 0.125) }
}

fn record_len(cmd: &Command) -> u64 {
    (RECORD_OVERHEAD + wire::encode_command(cmd).unwrap().len()) as u64
}

#[test]
fn rotation_produces_a_chained_segment_sequence() {
    let tmp = TempDir::new("rotation");
    let cmds: Vec<Command> = (0..7).map(observe).collect();
    // Fit exactly two records per segment: rotation triggers on the
    // append that would exceed the cap, never mid-record.
    let mut opts = options(&tmp);
    opts.segment_bytes = SEGMENT_HEADER_LEN as u64 + record_len(&cmds[0]) + record_len(&cmds[1]);

    let mut w = WalWriter::create(&opts, 2).unwrap();
    assert_eq!(w.shard(), 2);
    assert_eq!(w.epoch(), 0, "fresh directory starts at epoch 0");
    for c in &cmds {
        w.append(c).unwrap();
    }
    assert_eq!(w.next_record_seq(), 7);
    w.finish().unwrap();

    // 7 records, 2 per segment → segments of 2, 2, 2, 1.
    for (seg, expect) in [(0u32, 2usize), (1, 2), (2, 2), (3, 1)] {
        let path = tmp.0.join(segment_file_name(2, seg));
        let (header, decoded) = decode_segment(&path).unwrap();
        assert_eq!(header.shard, 2);
        assert_eq!(header.seg_seq, seg);
        assert_eq!(header.epoch, 0);
        assert_eq!(
            header.first_record_seq,
            seg * 2,
            "each header pins the count of records before it"
        );
        assert_eq!(decoded.len(), expect, "segment {seg}");
    }
    assert!(!tmp.0.join(segment_file_name(2, 4)).exists());
}

#[test]
fn each_writer_generation_bumps_the_epoch() {
    let tmp = TempDir::new("epochs");
    let opts = options(&tmp);

    let mut w = WalWriter::create(&opts, 0).unwrap();
    w.append(&release(1)).unwrap();
    assert_eq!(w.epoch(), 0);
    w.finish().unwrap();

    // Same shard restarted: new epoch, new segment — never appends to an
    // existing file.
    let mut w = WalWriter::create(&opts, 0).unwrap();
    assert_eq!(w.epoch(), 1);
    w.append(&release(2)).unwrap();
    let seg1 = w.current_segment().to_path_buf();
    assert_eq!(seg1, tmp.0.join(segment_file_name(0, 1)));
    w.finish().unwrap();

    // A different shard in the same directory sees both and goes above.
    let w = WalWriter::create(&opts, 1).unwrap();
    assert_eq!(w.epoch(), 2, "epoch is max over the whole directory, not per shard");
    w.finish().unwrap();

    let (h0, _) = decode_segment(&tmp.0.join(segment_file_name(0, 0))).unwrap();
    let (h1, _) = decode_segment(&seg1).unwrap();
    assert_eq!((h0.epoch, h1.epoch), (0, 1));
    assert_eq!(h1.first_record_seq, 1, "record seqs continue across the shard chain");
}

#[test]
fn purge_removes_segments_and_leaves_foreign_files() {
    let tmp = TempDir::new("purge");
    let opts = options(&tmp);
    let mut w = WalWriter::create(&opts, 0).unwrap();
    w.append(&release(1)).unwrap();
    w.finish().unwrap();
    let w = WalWriter::create(&opts, 3).unwrap();
    w.finish().unwrap();
    std::fs::write(tmp.0.join("notes.txt"), b"operator scratch").unwrap();

    assert_eq!(purge(&tmp.0).unwrap(), 2, "both shard chains removed");
    assert!(tmp.0.join("notes.txt").exists(), "non-.wal files are not ours to delete");
    assert_eq!(purge(&tmp.0).unwrap(), 0, "idempotent");
    let missing = tmp.0.join("never-created");
    assert_eq!(purge(&missing).unwrap(), 0, "missing directory is an empty log");

    // After a purge the next writer is epoch 0 again: a fresh history.
    let w = WalWriter::create(&opts, 0).unwrap();
    assert_eq!(w.epoch(), 0);
    w.finish().unwrap();
}

#[test]
fn invalid_options_are_rejected_before_any_file_is_touched() {
    let tmp = TempDir::new("options");

    let mut opts = options(&tmp);
    opts.fsync = FsyncPolicy::Interval { every: 0 };
    match WalWriter::create(&opts, 0) {
        Err(WalError::InvalidOptions { reason }) => assert!(reason.contains("fsync interval")),
        other => panic!("expected InvalidOptions, got {other:?}"),
    }

    let mut opts = options(&tmp);
    opts.segment_bytes = 0;
    match WalWriter::create(&opts, 0) {
        Err(WalError::InvalidOptions { reason }) => assert!(reason.contains("segment_bytes")),
        other => panic!("expected InvalidOptions, got {other:?}"),
    }

    assert!(!tmp.0.exists(), "rejected options must not create the directory");
}

#[test]
fn a_poisoned_writer_stays_poisoned() {
    let tmp = TempDir::new("poison");
    // One record per segment: every append after the first rotates.
    let mut opts = options(&tmp);
    opts.segment_bytes = 1;
    let mut w = WalWriter::create(&opts, 0).unwrap();
    w.append(&release(1)).unwrap();

    // Obstruct the next segment's path: the rotation inside the next
    // append fails, which must poison the writer for good.
    let blocked = tmp.0.join(segment_file_name(0, 1));
    std::fs::create_dir(&blocked).unwrap();
    assert!(matches!(w.append(&release(2)), Err(WalError::Io { .. })));

    // Even with the obstruction gone the writer refuses: it can no
    // longer promise the chain on disk matches what it acknowledged.
    std::fs::remove_dir(&blocked).unwrap();
    assert!(matches!(w.append(&release(3)), Err(WalError::Poisoned { .. })));
}

#[test]
fn unencodable_commands_are_rejected_without_touching_the_log() {
    use pir_engine::{MechanismSpec, SetSpec};
    use std::sync::Arc;

    let tmp = TempDir::new("unencodable");
    let mut w = WalWriter::create(&options(&tmp), 0).unwrap();
    let spec = MechanismSpec::Trivial {
        set: SetSpec::Custom(Arc::new(|| {
            Box::new(pir_geometry::L2Ball::unit(2)) as Box<dyn pir_geometry::ConvexSet>
        })),
    };
    let params = pir_dp::PrivacyParams::approx(1.0, 1e-6).unwrap();
    let cmd = Command::Open { session_id: 1, spec, t_max: 8, params };
    assert!(matches!(w.append(&cmd), Err(WalError::Wire { .. })));
    // The rejection is pre-write: the writer is NOT poisoned and the
    // chain continues exactly where it was.
    w.append(&release(1)).unwrap();
    assert_eq!(w.next_record_seq(), 1);
    w.finish().unwrap();
    let (_, decoded) = decode_segment(&tmp.0.join(segment_file_name(0, 0))).unwrap();
    assert_eq!(decoded.len(), 1, "only the encodable command reached the log");
}

#[test]
fn wal_errors_render_their_forensics() {
    let displays = [
        format!("{}", WalError::BadMagic { file: "x.wal".into(), got: [0xAB, 0xAB, 0xAB, 0xAB] }),
        format!(
            "{}",
            WalError::ChecksumMismatch {
                file: "x.wal".into(),
                offset: 28,
                expected: 0xDEAD_BEEF,
                got: 0x1234_5678,
            }
        ),
        format!("{}", WalError::MissingSegment { shard: 0, expected: 1, got: 2 }),
        format!("{}", WalError::OutOfOrder { file: "x.wal".into(), expected: 4, got: 9 }),
    ];
    for (rendered, needle) in displays.iter().zip(["magic", "checksum", "missing", "record seq"]) {
        assert!(rendered.to_lowercase().contains(needle), "{rendered:?} should mention {needle:?}");
    }
}

/// The worked example from `docs/PROTOCOL.md`, pinned byte for byte: one
/// fresh segment (shard 0, epoch 0) holding a single
/// `Release {{ session_id: 7 }}` record. If this test moves, the
/// protocol document and every reader of the format move with it —
/// change nothing here without a version bump.
#[test]
fn protocol_worked_example_is_bit_exact() {
    const EXPECTED: [u8; 64] = [
        // -- segment header (28 bytes) -----------------------------------
        0x50, 0x49, 0x52, 0x4c, // magic "PIRL"
        0x01, 0x00, 0x00, 0x00, // version 1, reserved
        0x00, 0x00, 0x00, 0x00, // epoch 0
        0x00, 0x00, 0x00, 0x00, // shard 0
        0x00, 0x00, 0x00, 0x00, // seg_seq 0
        0x00, 0x00, 0x00, 0x00, // first_record_seq 0
        0x16, 0x24, 0x12, 0x8f, // header CRC32 (bytes 0..24) = 0x8f122416
        // -- record header (12 bytes) -------------------------------------
        0x14, 0x00, 0x00, 0x00, // payload length 20
        0x00, 0x00, 0x00, 0x00, // record seq 0
        0xb8, 0xe0, 0xd3, 0x9d, // head CRC32 (previous 8 bytes) = 0x9dd3e0b8
        // -- payload: the PIRW wire frame for Release { session_id: 7 } ----
        0x50, 0x49, 0x52, 0x57, // wire magic "PIRW"
        0x01, 0x04, 0x00, 0x00, // wire version 1, opcode 4 (Release), reserved
        0x08, 0x00, 0x00, 0x00, // wire payload length 8
        0x07, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // session_id 7
        // -- payload CRC32 -------------------------------------------------
        0x67, 0xad, 0x02, 0x9a, // = 0x9a02ad67
    ];

    let tmp = TempDir::new("worked-example");
    let mut w = WalWriter::create(&options(&tmp), 0).unwrap();
    w.append(&release(7)).unwrap();
    let path = w.current_segment().to_path_buf();
    w.finish().unwrap();

    let bytes = std::fs::read(&path).unwrap();
    assert_eq!(bytes, EXPECTED, "on-disk format drifted from docs/PROTOCOL.md");

    // Cross-check the pinned checksums against the implementation.
    assert_eq!(wal::crc32(&EXPECTED[0..24]), 0x8f12_2416);
    assert_eq!(wal::crc32(&EXPECTED[28..36]), 0x9dd3_e0b8);
    assert_eq!(wal::crc32(&EXPECTED[40..60]), 0x9a02_ad67);

    // And the tolerant scanner agrees on what it holds.
    let scanned = scan_segment(&path).unwrap();
    assert_eq!(scanned.commands.len(), 1);
    assert!(scanned.torn_tail.is_none());
}
