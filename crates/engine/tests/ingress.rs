//! Integration tests for the pipelined ingestion frontend: parity with
//! the direct engine under resharding, atomic backpressure, pipelining,
//! and drain semantics.

use pir_dp::PrivacyParams;
use pir_engine::{
    Command, EngineConfig, EngineError, EngineHandle, IngressConfig, MechanismSpec, Reply,
    ShardedEngine,
};
use pir_erm::DataPoint;
use proptest::prelude::*;

fn params() -> PrivacyParams {
    PrivacyParams::approx(1.0, 1e-6).unwrap()
}

fn point(d: usize, t: usize, session: u64) -> DataPoint {
    let mut x = vec![0.0f64; d];
    x[t % d] = 0.6;
    x[(t + session as usize) % d] += 0.3;
    let y = (0.5 * x[0]).clamp(-1.0, 1.0);
    DataPoint::new(x, y)
}

/// A mixed-tenant arrival sequence over `sessions` sessions.
fn arrivals(d: usize, sessions: u64, n: usize) -> Vec<(u64, DataPoint)> {
    (0..n)
        .map(|i| {
            let sid = (i as u64) % sessions;
            (sid, point(d, i / sessions as usize, sid))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The acceptance property: the pipelined path is
    /// release-for-release identical to direct `ShardedEngine::ingest`,
    /// under *different* shard counts on each side (reshard invariance
    /// carries through the queues).
    #[test]
    fn pipelined_matches_direct_ingest_under_resharding(
        direct_shards in 1usize..5,
        pipelined_shards in 1usize..5,
        seed in any::<u64>(),
        sessions in 1u64..7,
        rounds in 1usize..4,
    ) {
        let d = 3;
        let spec = MechanismSpec::reg1_l2(d);
        let n = sessions as usize * rounds;

        let mut direct = ShardedEngine::new(EngineConfig {
            num_shards: direct_shards,
            seed,
            parallel: false,
        })
        .unwrap();
        direct.spawn_sessions(0..sessions, &spec, 64, &params()).unwrap();
        let expected = direct.ingest(arrivals(d, sessions, n));

        let handle = EngineHandle::new(IngressConfig {
            num_shards: pipelined_shards,
            seed,
            queue_depth: 256,
        })
        .unwrap();
        for sid in 0..sessions {
            handle.open(sid, &spec, 64, &params()).unwrap();
        }
        let got = handle.ingest(arrivals(d, sessions, n));
        handle.close();

        prop_assert_eq!(expected, got);
    }
}

#[test]
fn per_session_command_streams_match_direct_observation() {
    // open → observe ×k → release, all pipelined without intermediate
    // waits, must release exactly what the direct engine releases.
    let seed = 99;
    let d = 4;
    let spec = MechanismSpec::reg2_l1(d, 2.0);

    let mut direct =
        ShardedEngine::new(EngineConfig { num_shards: 3, seed, parallel: false }).unwrap();
    direct.spawn_sessions([5, 6], &spec, 16, &params()).unwrap();

    let handle = EngineHandle::new(IngressConfig { num_shards: 2, seed, queue_depth: 64 }).unwrap();
    let mut tickets = Vec::new();
    for sid in [5u64, 6] {
        tickets.push((sid, None, handle.open(sid, &spec, 16, &params()).unwrap()));
    }
    for t in 0..4usize {
        for sid in [5u64, 6] {
            tickets.push((sid, Some(t), handle.observe(sid, point(d, t, sid)).unwrap()));
        }
    }

    for (sid, t, ticket) in tickets {
        match (t, ticket.wait()) {
            (None, reply) => assert_eq!(reply, Reply::Opened { session_id: sid }),
            (Some(t), reply) => {
                let thetas = reply.into_releases().unwrap();
                assert_eq!(thetas.len(), 1);
                let expected = direct.observe(sid, &point(d, t, sid)).unwrap();
                assert_eq!(thetas[0], expected, "session {sid} step {t}");
            }
        }
    }

    // Release reports the consumed stream length and the charged budget.
    let reply = handle.release_session(5).unwrap().wait();
    match reply {
        Reply::SessionReleased { session_id, points, epsilon_spent, delta_spent } => {
            assert_eq!(session_id, 5);
            assert_eq!(points, 4);
            assert!((epsilon_spent - 1.0).abs() < 1e-12);
            assert!((delta_spent - 1e-6).abs() < 1e-18);
        }
        other => panic!("expected SessionReleased, got {other:?}"),
    }
    let stats = handle.close();
    assert_eq!(stats.sessions, 1); // session 6 still live
    assert_eq!(stats.points, 4);
}

#[test]
fn oversized_batch_is_rejected_atomically() {
    let handle =
        EngineHandle::new(IngressConfig { num_shards: 1, seed: 1, queue_depth: 4 }).unwrap();
    handle.open(1, &MechanismSpec::reg1_l2(2), 16, &params()).unwrap().wait();

    // Cost 5 > depth 4: rejected before anything is enqueued.
    let batch: Vec<DataPoint> = (0..5).map(|t| point(2, t, 1)).collect();
    let err = handle.observe_batch(1, batch).unwrap_err();
    assert!(
        matches!(err, EngineError::Backpressure { shard: 0, capacity: 4, cost: 5, .. }),
        "unexpected error: {err:?}"
    );

    // Nothing was applied: the session is still at t = 0.
    match handle.release_session(1).unwrap().wait() {
        Reply::SessionReleased { points, .. } => assert_eq!(points, 0),
        other => panic!("expected SessionReleased, got {other:?}"),
    }
}

#[test]
fn ingest_reports_backpressure_for_unplaceable_shard_slices() {
    // A whole-fleet batch whose single-shard slice exceeds the queue can
    // never fit; ingest must report (not deadlock on) those indices.
    let handle =
        EngineHandle::new(IngressConfig { num_shards: 1, seed: 1, queue_depth: 2 }).unwrap();
    handle.open(1, &MechanismSpec::reg1_l2(2), 16, &params()).unwrap();
    let batch: Vec<(u64, DataPoint)> = (0..3).map(|t| (1u64, point(2, t, 1))).collect();
    let out = handle.ingest(batch);
    assert_eq!(out.len(), 3);
    for r in &out {
        assert!(matches!(r, Err(EngineError::Backpressure { cost: 3, capacity: 2, .. })));
    }
    handle.close();
}

#[test]
fn flush_is_a_barrier_and_queues_drain_to_zero() {
    let handle =
        EngineHandle::new(IngressConfig { num_shards: 3, seed: 7, queue_depth: 128 }).unwrap();
    let spec = MechanismSpec::reg1_l2(2);
    let mut tickets = Vec::new();
    for sid in 0..12u64 {
        handle.open(sid, &spec, 8, &params()).unwrap();
        tickets.push(handle.observe(sid, point(2, 0, sid)).unwrap());
    }
    handle.flush();
    // Everything submitted before the flush has fully completed.
    assert_eq!(handle.queue_depths(), vec![0, 0, 0]);
    for t in tickets {
        assert!(t.try_wait().is_some(), "flush returned before a reply resolved");
    }
    handle.close();
}

#[test]
fn close_command_is_a_barrier_with_a_resolved_ticket() {
    let handle =
        EngineHandle::new(IngressConfig { num_shards: 2, seed: 7, queue_depth: 64 }).unwrap();
    handle.open(3, &MechanismSpec::reg1_l2(2), 8, &params()).unwrap();
    let obs = handle.observe(3, point(2, 0, 3)).unwrap();
    let closed = handle.submit(Command::Close).unwrap();
    // The barrier has already run: both earlier tickets are resolved.
    assert_eq!(closed.wait(), Reply::Closed);
    assert!(obs.try_wait().is_some());
    handle.close();
}

#[test]
fn command_errors_mirror_the_direct_engine() {
    let handle =
        EngineHandle::new(IngressConfig { num_shards: 2, seed: 7, queue_depth: 64 }).unwrap();
    let spec = MechanismSpec::reg1_l2(2);
    assert_eq!(
        handle.observe(9, point(2, 0, 9)).unwrap().wait(),
        Reply::Err(EngineError::UnknownSession { id: 9 })
    );
    assert_eq!(
        handle.release_session(9).unwrap().wait(),
        Reply::Err(EngineError::UnknownSession { id: 9 })
    );
    handle.open(9, &spec, 8, &params()).unwrap();
    assert_eq!(
        handle.open(9, &spec, 8, &params()).unwrap().wait(),
        Reply::Err(EngineError::DuplicateSession { id: 9 })
    );
    // Horizon overflow is rejected atomically through the queue too.
    let run: Vec<DataPoint> = (0..9).map(|t| point(2, t, 9)).collect();
    match handle.observe_batch(9, run).unwrap().wait() {
        Reply::Err(EngineError::Mechanism { .. }) => {}
        other => panic!("expected mechanism error, got {other:?}"),
    }
    match handle.release_session(9).unwrap().wait() {
        Reply::SessionReleased { points, .. } => assert_eq!(points, 0),
        other => panic!("expected SessionReleased, got {other:?}"),
    }
    handle.close();
}

#[test]
fn invalid_configs_are_rejected() {
    assert!(matches!(
        EngineHandle::new(IngressConfig { num_shards: 0, seed: 1, queue_depth: 8 }),
        Err(EngineError::InvalidConfig { .. })
    ));
    assert!(matches!(
        EngineHandle::new(IngressConfig { num_shards: 2, seed: 1, queue_depth: 0 }),
        Err(EngineError::InvalidConfig { .. })
    ));
}
