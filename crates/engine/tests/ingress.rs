//! Integration tests for the pipelined ingestion frontend: parity with
//! the direct engine under resharding *and* under concurrent submitters,
//! atomic backpressure (transient vs permanent), connection-scoped
//! close, pipelining, and drain semantics.

use pir_dp::PrivacyParams;
use pir_engine::{
    Command, EngineConfig, EngineError, EngineHandle, IngressConfig, MechanismSpec, Reply,
    ShardedEngine, SubmitHandle,
};
use pir_erm::DataPoint;
use proptest::prelude::*;

fn params() -> PrivacyParams {
    PrivacyParams::approx(1.0, 1e-6).unwrap()
}

fn point(d: usize, t: usize, session: u64) -> DataPoint {
    let mut x = vec![0.0f64; d];
    x[t % d] = 0.6;
    x[(t + session as usize) % d] += 0.3;
    let y = (0.5 * x[0]).clamp(-1.0, 1.0);
    DataPoint::new(x, y)
}

/// A mixed-tenant arrival sequence over `sessions` sessions.
fn arrivals(d: usize, sessions: u64, n: usize) -> Vec<(u64, DataPoint)> {
    (0..n)
        .map(|i| {
            let sid = (i as u64) % sessions;
            (sid, point(d, i / sessions as usize, sid))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The acceptance property: the pipelined path is
    /// release-for-release identical to direct `ShardedEngine::ingest`,
    /// under *different* shard counts on each side (reshard invariance
    /// carries through the queues).
    #[test]
    fn pipelined_matches_direct_ingest_under_resharding(
        direct_shards in 1usize..5,
        pipelined_shards in 1usize..5,
        seed in any::<u64>(),
        sessions in 1u64..7,
        rounds in 1usize..4,
    ) {
        let d = 3;
        let spec = MechanismSpec::reg1_l2(d);
        let n = sessions as usize * rounds;

        let mut direct = ShardedEngine::new(EngineConfig {
            num_shards: direct_shards,
            seed,
            parallel: false,
        })
        .unwrap();
        direct.spawn_sessions(0..sessions, &spec, 64, &params()).unwrap();
        let expected = direct.ingest(arrivals(d, sessions, n));

        let handle = EngineHandle::new(IngressConfig {
            num_shards: pipelined_shards,
            seed,
            queue_depth: 256,
        })
        .unwrap();
        for sid in 0..sessions {
            handle.open(sid, &spec, 64, &params()).unwrap();
        }
        let got = handle.ingest(arrivals(d, sessions, n));
        handle.close();

        prop_assert_eq!(expected, got);
    }
}

#[test]
fn per_session_command_streams_match_direct_observation() {
    // open → observe ×k → release, all pipelined without intermediate
    // waits, must release exactly what the direct engine releases.
    let seed = 99;
    let d = 4;
    let spec = MechanismSpec::reg2_l1(d, 2.0);

    let mut direct =
        ShardedEngine::new(EngineConfig { num_shards: 3, seed, parallel: false }).unwrap();
    direct.spawn_sessions([5, 6], &spec, 16, &params()).unwrap();

    let handle = EngineHandle::new(IngressConfig { num_shards: 2, seed, queue_depth: 64 }).unwrap();
    let mut tickets = Vec::new();
    for sid in [5u64, 6] {
        tickets.push((sid, None, handle.open(sid, &spec, 16, &params()).unwrap()));
    }
    for t in 0..4usize {
        for sid in [5u64, 6] {
            tickets.push((sid, Some(t), handle.observe(sid, point(d, t, sid)).unwrap()));
        }
    }

    for (sid, t, ticket) in tickets {
        match (t, ticket.wait()) {
            (None, reply) => assert_eq!(reply, Reply::Opened { session_id: sid }),
            (Some(t), reply) => {
                let thetas = reply.into_releases().unwrap();
                assert_eq!(thetas.len(), 1);
                let expected = direct.observe(sid, &point(d, t, sid)).unwrap();
                assert_eq!(thetas[0], expected, "session {sid} step {t}");
            }
        }
    }

    // Release reports the consumed stream length and the charged budget.
    let reply = handle.release_session(5).unwrap().wait();
    match reply {
        Reply::SessionReleased { session_id, points, epsilon_spent, delta_spent } => {
            assert_eq!(session_id, 5);
            assert_eq!(points, 4);
            assert!((epsilon_spent - 1.0).abs() < 1e-12);
            assert!((delta_spent - 1e-6).abs() < 1e-18);
        }
        other => panic!("expected SessionReleased, got {other:?}"),
    }
    let stats = handle.close();
    assert_eq!(stats.sessions, 1); // session 6 still live
    assert_eq!(stats.points, 4);
}

#[test]
fn oversized_batch_is_rejected_permanently_and_atomically() {
    let handle =
        EngineHandle::new(IngressConfig { num_shards: 1, seed: 1, queue_depth: 4 }).unwrap();
    handle.open(1, &MechanismSpec::reg1_l2(2), 16, &params()).unwrap().wait();

    // Cost 5 > depth 4: can *never* fit — a permanent rejection, distinct
    // from transient backpressure, and raised before anything is
    // enqueued.
    let batch: Vec<DataPoint> = (0..5).map(|t| point(2, t, 1)).collect();
    let err = handle.observe_batch(1, batch).unwrap_err();
    assert!(
        matches!(err, EngineError::CommandTooLarge { shard: 0, cost: 5, capacity: 4 }),
        "unexpected error: {err:?}"
    );
    assert!(!err.is_retryable(), "a never-fits rejection must not invite retries");

    // Nothing was applied: the session is still at t = 0.
    match handle.release_session(1).unwrap().wait() {
        Reply::SessionReleased { points, .. } => assert_eq!(points, 0),
        other => panic!("expected SessionReleased, got {other:?}"),
    }
}

#[test]
fn transient_backpressure_is_retryable_and_reports_reservation_time_depth() {
    // Saturate a small queue (a command's cost stays reserved while the
    // worker computes it, and submission is orders of magnitude faster
    // than an observe), then inspect the rejection: it must be the
    // transient kind, carry the depth the failed compare-and-swap
    // actually saw — for cost 1 that is exactly `capacity`, which a
    // post-hoc racy re-read could not guarantee — and clear on drain.
    let handle =
        EngineHandle::new(IngressConfig { num_shards: 1, seed: 1, queue_depth: 4 }).unwrap();
    handle.open(1, &MechanismSpec::reg1_l2(16), 600, &params()).unwrap();
    let mut tickets = Vec::new();
    let mut rejection = None;
    for t in 0..512usize {
        match handle.observe(1, point(16, t, 1)) {
            Ok(ticket) => tickets.push(ticket),
            Err(e) => {
                rejection = Some(e);
                break;
            }
        }
    }
    let err = rejection.expect("512 instant submissions must outrun a 4-point queue");
    match err {
        EngineError::Backpressure { shard: 0, depth, capacity: 4, cost: 1 } => {
            assert_eq!(depth, 4, "reported depth must be the reservation-time observation");
        }
        ref other => panic!("expected transient backpressure, got {other:?}"),
    }
    assert!(err.is_retryable());
    // The contract: transient rejections clear once the shard drains.
    handle.flush();
    handle.observe(1, point(16, 513, 1)).unwrap().wait().into_releases().unwrap();
    for t in tickets {
        t.wait().into_releases().unwrap();
    }
    handle.close();
}

#[test]
fn ingest_reports_permanent_rejection_for_unplaceable_shard_slices() {
    // A whole-fleet batch whose single-shard slice exceeds the queue can
    // never fit; ingest must report (not deadlock on) those indices, and
    // must report them as permanent — no depth to mislead a retry loop.
    let handle =
        EngineHandle::new(IngressConfig { num_shards: 1, seed: 1, queue_depth: 2 }).unwrap();
    handle.open(1, &MechanismSpec::reg1_l2(2), 16, &params()).unwrap();
    let batch: Vec<(u64, DataPoint)> = (0..3).map(|t| (1u64, point(2, t, 1))).collect();
    let out = handle.ingest(batch);
    assert_eq!(out.len(), 3);
    for r in &out {
        assert!(matches!(r, Err(EngineError::CommandTooLarge { cost: 3, capacity: 2, .. })));
        assert!(!r.as_ref().unwrap_err().is_retryable());
    }
    handle.close();
}

#[test]
fn flush_is_a_barrier_and_queues_drain_to_zero() {
    let handle =
        EngineHandle::new(IngressConfig { num_shards: 3, seed: 7, queue_depth: 128 }).unwrap();
    let spec = MechanismSpec::reg1_l2(2);
    let mut tickets = Vec::new();
    for sid in 0..12u64 {
        handle.open(sid, &spec, 8, &params()).unwrap();
        tickets.push(handle.observe(sid, point(2, 0, sid)).unwrap());
    }
    handle.flush();
    // Everything submitted before the flush has fully completed.
    assert_eq!(handle.queue_depths(), vec![0, 0, 0]);
    for t in tickets {
        assert!(t.try_wait().is_some(), "flush returned before a reply resolved");
    }
    handle.close();
}

#[test]
fn close_is_connection_scoped_and_never_waits_on_queued_compute() {
    // One tenant's heavy batch is in flight; another connection's
    // goodbye must resolve instantly, not ride a fleet-wide flush. (The
    // old behavior — submit(Close) running a blocking flush() across
    // every shard — stalls here for the whole batch.)
    let handle =
        EngineHandle::new(IngressConfig { num_shards: 2, seed: 7, queue_depth: 2048 }).unwrap();
    let d = 32;
    handle.open(3, &MechanismSpec::reg1_l2(d), 1024, &params()).unwrap();
    let batch: Vec<DataPoint> = (0..600).map(|t| point(d, t, 3)).collect();
    let slow = handle.observe_batch(3, batch).unwrap();

    let closed = handle.submit(Command::Close).unwrap();
    // Already resolved — Close never touches the shard queues.
    assert_eq!(closed.try_wait(), Some(Reply::Closed));
    // ... and the heavy batch (hundreds of milliseconds of compute) is
    // still in flight: Close did not act as a fleet barrier. The µs
    // between the two submissions cannot have computed 600 points.
    assert!(
        slow.try_wait().is_none(),
        "Close stalled on another session's queued compute (fleet-wide barrier)"
    );

    // An explicit flush is still the fleet-wide barrier when one is
    // actually wanted.
    handle.flush();
    assert!(slow.try_wait().is_some());
    handle.close();
}

#[test]
fn command_errors_mirror_the_direct_engine() {
    let handle =
        EngineHandle::new(IngressConfig { num_shards: 2, seed: 7, queue_depth: 64 }).unwrap();
    let spec = MechanismSpec::reg1_l2(2);
    assert_eq!(
        handle.observe(9, point(2, 0, 9)).unwrap().wait(),
        Reply::Err(EngineError::UnknownSession { id: 9 })
    );
    assert_eq!(
        handle.release_session(9).unwrap().wait(),
        Reply::Err(EngineError::UnknownSession { id: 9 })
    );
    handle.open(9, &spec, 8, &params()).unwrap();
    assert_eq!(
        handle.open(9, &spec, 8, &params()).unwrap().wait(),
        Reply::Err(EngineError::DuplicateSession { id: 9 })
    );
    // Horizon overflow is rejected atomically through the queue too.
    let run: Vec<DataPoint> = (0..9).map(|t| point(2, t, 9)).collect();
    match handle.observe_batch(9, run).unwrap().wait() {
        Reply::Err(EngineError::Mechanism { .. }) => {}
        other => panic!("expected mechanism error, got {other:?}"),
    }
    match handle.release_session(9).unwrap().wait() {
        Reply::SessionReleased { points, .. } => assert_eq!(points, 0),
        other => panic!("expected SessionReleased, got {other:?}"),
    }
    handle.close();
}

#[test]
fn invalid_configs_are_rejected() {
    assert!(matches!(
        EngineHandle::new(IngressConfig { num_shards: 0, seed: 1, queue_depth: 8 }),
        Err(EngineError::InvalidConfig { .. })
    ));
    assert!(matches!(
        EngineHandle::new(IngressConfig { num_shards: 2, seed: 1, queue_depth: 0 }),
        Err(EngineError::InvalidConfig { .. })
    ));
}

#[test]
fn submit_handle_is_clone_send_sync() {
    // The acceptance criterion for the shareable front door, as a
    // compile-time fact.
    fn assert_shareable<T: Clone + Send + Sync>() {}
    assert_shareable::<SubmitHandle>();
}

#[test]
fn submit_blocking_waits_out_transient_backpressure_but_not_permanent() {
    let handle =
        EngineHandle::new(IngressConfig { num_shards: 1, seed: 3, queue_depth: 4 }).unwrap();
    handle.open(1, &MechanismSpec::reg1_l2(2), 64, &params()).unwrap().wait();

    // Permanent: cost 5 > capacity 4 returns immediately — no hang.
    let batch: Vec<DataPoint> = (0..5).map(|t| point(2, t, 1)).collect();
    let err =
        handle.submit_blocking(Command::ObserveBatch { session_id: 1, points: batch }).unwrap_err();
    assert!(matches!(err, EngineError::CommandTooLarge { cost: 5, capacity: 4, .. }));

    // Transient: saturate the queue, then a full-cost batch must be
    // admitted once the shard drains (rather than bouncing).
    for t in 0..4usize {
        handle.observe(1, point(2, t, 1)).unwrap();
    }
    let batch: Vec<DataPoint> = (4..8).map(|t| point(2, t, 1)).collect();
    let ticket =
        handle.submit_blocking(Command::ObserveBatch { session_id: 1, points: batch }).unwrap();
    assert_eq!(ticket.wait().into_releases().unwrap().len(), 4);
    handle.close();
}

#[test]
fn try_submit_hands_a_rejected_command_back_unconsumed() {
    let handle =
        EngineHandle::new(IngressConfig { num_shards: 1, seed: 3, queue_depth: 2 }).unwrap();
    let points: Vec<DataPoint> = (0..3).map(|t| point(2, t, 1)).collect();
    let (rejected, err) = handle
        .try_submit(Command::ObserveBatch { session_id: 1, points: points.clone() })
        .err()
        .unwrap();
    assert!(matches!(err, EngineError::CommandTooLarge { .. }));
    match rejected {
        Command::ObserveBatch { session_id: 1, points: got } => assert_eq!(got, points),
        other => panic!("expected the batch back, got {other:?}"),
    }
    handle.close();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The acceptance property for the shareable handle: N ≥ 4 threads
    /// feeding one engine through cloned `SubmitHandle`s — no external
    /// lock — on disjoint sessions release exactly what the direct
    /// single-threaded engine releases, bit for bit, under real thread
    /// interleaving.
    #[test]
    fn concurrent_submitters_on_disjoint_sessions_match_direct_engine(
        shards in 1usize..4,
        seed in any::<u64>(),
        threads in 4usize..7,
        steps in 1usize..6,
    ) {
        let d = 3;
        let spec = MechanismSpec::reg1_l2(d);
        let handle = EngineHandle::new(IngressConfig {
            num_shards: shards,
            seed,
            queue_depth: 64,
        })
        .unwrap();

        let per_session: Vec<(u64, Vec<Vec<f64>>)> = std::thread::scope(|s| {
            let joins: Vec<_> = (0..threads as u64)
                .map(|sid| {
                    let submit = handle.submit_handle();
                    let spec = spec.clone();
                    s.spawn(move || {
                        submit.open(sid, &spec, 64, &params()).unwrap();
                        let tickets: Vec<_> = (0..steps)
                            .map(|t| submit.observe(sid, point(d, t, sid)).unwrap())
                            .collect();
                        let thetas = tickets
                            .into_iter()
                            .map(|tk| {
                                let mut th = tk.wait().into_releases().unwrap();
                                assert_eq!(th.len(), 1);
                                th.pop().unwrap()
                            })
                            .collect::<Vec<_>>();
                        (sid, thetas)
                    })
                })
                .collect();
            joins.into_iter().map(|j| j.join().unwrap()).collect()
        });
        handle.close();

        let mut direct =
            ShardedEngine::new(EngineConfig { num_shards: 1, seed, parallel: false }).unwrap();
        direct.spawn_sessions(0..threads as u64, &spec, 64, &params()).unwrap();
        for (sid, thetas) in per_session {
            for (t, theta) in thetas.iter().enumerate() {
                let expected = direct.observe(sid, &point(d, t, sid)).unwrap();
                prop_assert_eq!(theta, &expected, "session {} step {}", sid, t);
            }
        }
    }

    /// Two bulk ingesters hammering one engine through cloned handles,
    /// with a queue small enough to force blocking reservations against
    /// each other: no livelock, no loss, and every release identical to
    /// the direct engine.
    #[test]
    fn concurrent_bulk_ingesters_share_one_engine_without_livelock(
        shards in 1usize..4,
        seed in any::<u64>(),
        rounds in 1usize..5,
    ) {
        let d = 2;
        let spec = MechanismSpec::reg1_l2(d);
        let handle = EngineHandle::new(IngressConfig {
            num_shards: shards,
            seed,
            // Each ingester's worst-case shard slice is 4 points — equal
            // to the whole queue, so the two contend hard for space.
            queue_depth: 4,
        })
        .unwrap();
        for sid in 0..8u64 {
            // Wait out each open: eight back-to-back submits would
            // themselves overflow the deliberately tiny queue.
            assert_eq!(
                handle.open(sid, &spec, 64, &params()).unwrap().wait(),
                Reply::Opened { session_id: sid }
            );
        }

        let feed = |sessions: std::ops::Range<u64>| {
            let submit = handle.submit_handle();
            move || {
                let mut out = Vec::new();
                for round in 0..rounds {
                    let batch: Vec<(u64, DataPoint)> =
                        sessions.clone().map(|sid| (sid, point(d, round, sid))).collect();
                    out.extend(submit.ingest(batch).into_iter().map(|r| r.unwrap()));
                }
                out
            }
        };
        let (got_a, got_b) = std::thread::scope(|s| {
            let a = s.spawn(feed(0..4));
            let b = s.spawn(feed(4..8));
            (a.join().unwrap(), b.join().unwrap())
        });
        handle.close();

        let mut direct =
            ShardedEngine::new(EngineConfig { num_shards: 1, seed, parallel: false }).unwrap();
        direct.spawn_sessions(0..8u64, &spec, 64, &params()).unwrap();
        for (base, got) in [(0u64, got_a), (4u64, got_b)] {
            for round in 0..rounds {
                for (i, sid) in (base..base + 4).enumerate() {
                    let expected = direct.observe(sid, &point(d, round, sid)).unwrap();
                    prop_assert_eq!(&got[round * 4 + i], &expected, "session {} round {}", sid, round);
                }
            }
        }
    }
}

#[test]
fn surviving_clones_fail_closed_even_for_oversized_commands() {
    // After close(), a clone must report Closed — never a size verdict
    // whose "split and retry" advice cannot possibly succeed.
    let handle =
        EngineHandle::new(IngressConfig { num_shards: 1, seed: 2, queue_depth: 2 }).unwrap();
    let submit = handle.submit_handle();
    handle.close();
    let oversized: Vec<DataPoint> = (0..3).map(|t| point(2, t, 1)).collect();
    assert!(matches!(submit.observe_batch(1, oversized).unwrap_err(), EngineError::Closed));
    assert!(matches!(submit.observe(1, point(2, 0, 1)).unwrap_err(), EngineError::Closed));
    assert!(matches!(
        submit.submit_blocking(Command::Observe { session_id: 1, point: point(2, 0, 1) }),
        Err(EngineError::Closed)
    ));
    for r in submit.ingest(vec![(1, point(2, 0, 1))]) {
        assert!(matches!(r, Err(EngineError::Closed)));
    }
}
