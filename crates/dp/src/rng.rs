//! Seeded noise source.
//!
//! All privacy noise in the workspace flows through [`NoiseRng`] so that
//! experiments are exactly reproducible from a single `u64` seed and so that
//! the normal/Laplace deviate generation is self-contained (only the
//! generator's uniform bit stream is consumed). The bit stream is an
//! in-tree xoshiro256++ seeded through SplitMix64 — no external `rand`
//! dependency, which keeps the workspace buildable offline.
//!
//! Standard-normal deviates use a 256-layer ziggurat (Marsaglia & Tsang,
//! the same construction as GSL's `gsl_ran_gaussian_ziggurat` and
//! `rand_distr`): one `u64` yields both the layer index and the abscissa,
//! so ~98.8% of draws cost one table lookup, one multiply, and one compare.
//! The tail beyond the rightmost layer boundary falls back to Marsaglia's
//! exponential method. [`NoiseRng::standard_gaussian_box_muller`] keeps the
//! previous polar Box–Muller sampler as a cross-validation and benchmark
//! reference. Laplace uses inverse-CDF sampling.

use std::sync::OnceLock;

/// xoshiro256++ core generator (public-domain algorithm by Blackman &
/// Vigna): 256-bit state, passes BigCrush, and is cheap enough to sit on
/// the per-node noise path of the tree mechanisms.
#[derive(Debug, Clone)]
struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    /// Expand a 64-bit seed into the 256-bit state via SplitMix64 (the
    /// seeding procedure the xoshiro authors recommend).
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Xoshiro256PlusPlus { s: [next(), next(), next(), next()] }
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        core_next(&mut self.s)
    }
}

/// One xoshiro256++ step on a raw state. Every sampler below is written
/// against this free function so the bulk fill paths can run it on a
/// *local copy* of the state (see [`NoiseRng::fill_gaussian`]): inside a
/// fill loop the four state words then live in registers for the whole
/// slice instead of being loaded and stored through `&mut self` on every
/// draw — the per-call overhead is paid once per fill, not once per word.
#[inline]
fn core_next(s: &mut [u64; 4]) -> u64 {
    let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
    let t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = s[3].rotate_left(45);
    result
}

/// Uniform deviate in `[0, 1)` from the top 53 bits of the next word.
#[inline]
fn core_f64(s: &mut [u64; 4]) -> f64 {
    (core_next(s) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform deviate in the open interval `(0, 1)`.
#[inline]
fn core_uniform_open(s: &mut [u64; 4]) -> f64 {
    loop {
        let u = core_f64(s);
        if u > 0.0 && u < 1.0 {
            return u;
        }
    }
}

/// Standard normal deviate via the 256-layer ziggurat, on a raw state.
#[inline]
fn core_gaussian(s: &mut [u64; 4], tables: &ZigTables) -> f64 {
    loop {
        let bits = core_next(s);
        // Low byte → layer; bits 12.. → 52-bit mantissa mapped through
        // [2, 4) to a signed abscissa fraction u ∈ [-1, 1). The two bit
        // fields are disjoint, so layer and abscissa are independent.
        let i = (bits & 0xFF) as usize;
        let u = f64::from_bits((bits >> 12) | 0x4000_0000_0000_0000) - 3.0;
        let x = u * tables.x[i];
        if x.abs() < tables.x[i + 1] {
            // Strictly inside the next-narrower layer: accept. ~98.8%
            // of draws exit here with no transcendental evaluation.
            return x;
        }
        if i == 0 {
            return core_gaussian_tail(s, u < 0.0);
        }
        // Wedge: accept with probability proportional to the density
        // overhang between the layer's rectangle and the true pdf.
        let f_hi = tables.f[i];
        let f_lo = tables.f[i + 1];
        if f_lo + (f_hi - f_lo) * core_f64(s) < zig_pdf(x) {
            return x;
        }
    }
}

/// Tail sample `|Z| > R` by Marsaglia's exponential method: accept
/// `x = -ln(U₁)/R` against `-ln(U₂) ≥ x²/2` and return `±(R + x)`.
#[cold]
fn core_gaussian_tail(s: &mut [u64; 4], negative: bool) -> f64 {
    loop {
        let x = -core_uniform_open(s).ln() / ZIG_R;
        let y = -core_uniform_open(s).ln();
        if 2.0 * y >= x * x {
            return if negative { -(ZIG_R + x) } else { ZIG_R + x };
        }
    }
}

/// Laplace deviate with location 0 via inverse-CDF sampling, on a raw
/// state.
#[inline]
fn core_laplace(s: &mut [u64; 4], scale: f64) -> f64 {
    let u = core_uniform_open(s) - 0.5;
    -scale * u.signum() * (1.0 - 2.0 * u.abs()).ln()
}

/// Number of ziggurat layers. 256 lets the layer index come straight from
/// the low byte of the same `u64` that provides the abscissa bits.
const ZIG_LAYERS: usize = 256;

/// Rightmost layer boundary `R` for the 256-layer standard-normal ziggurat
/// (Marsaglia & Tsang's solution of `V = R·f(R) + ∫_R^∞ f`).
const ZIG_R: f64 = 3.654_152_885_361_009;

/// Common area `V` of each ziggurat block (tail included in layer 0).
const ZIG_V: f64 = 0.004928673233997087;

/// Unnormalized standard-normal density `exp(-x²/2)`.
#[inline]
fn zig_pdf(x: f64) -> f64 {
    (-0.5 * x * x).exp()
}

/// Precomputed layer edges `x[i]` and densities `f[i] = exp(-x[i]²/2)`.
///
/// `x[1] = R` is the rightmost edge; `x[0] = V / f(R)` is the *virtual*
/// base-layer width that makes layer 0 absorb the tail mass, and
/// `x[256] = 0` closes the stack at the mode. Built once on first use —
/// the tables are plain fixed-size arrays inside a `OnceLock`, so
/// initialization performs no heap allocation (the steady-state
/// allocation audit in `tests/alloc_steady_state.rs` covers this path).
struct ZigTables {
    x: [f64; ZIG_LAYERS + 1],
    f: [f64; ZIG_LAYERS + 1],
}

static ZIG_TABLES: OnceLock<ZigTables> = OnceLock::new();

fn zig_tables() -> &'static ZigTables {
    ZIG_TABLES.get_or_init(|| {
        let f_inv = |y: f64| (-2.0 * y.ln()).sqrt();
        let mut x = [0.0; ZIG_LAYERS + 1];
        x[0] = ZIG_V / zig_pdf(ZIG_R);
        x[1] = ZIG_R;
        for i in 2..ZIG_LAYERS {
            // Each layer has area V: x[i] solves V = x[i-1]·(f(x[i]) − f(x[i-1])).
            x[i] = f_inv(ZIG_V / x[i - 1] + zig_pdf(x[i - 1]));
        }
        x[ZIG_LAYERS] = 0.0;
        let mut f = [0.0; ZIG_LAYERS + 1];
        for i in 0..=ZIG_LAYERS {
            f[i] = zig_pdf(x[i]);
        }
        ZigTables { x, f }
    })
}

/// A seedable random source producing the deviates the DP mechanisms need.
///
/// Every deviate consumes raw xoshiro words in order — there is no
/// read-ahead buffer and no cached spare, so the `[u64; 4]` state *is*
/// the whole sampler position. (An explicit block-buffered refill was
/// tried and measured as a strict pessimization: the scrambler is a
/// serial recurrence, so buffering its output adds a store, a load, and
/// cursor bookkeeping per word on top of identical scrambler work. The
/// bulk fill paths get their speed the cheap way instead — by running
/// the core on a register-local state copy for the whole slice; see
/// `core_next`.)
#[derive(Debug)]
pub struct NoiseRng {
    inner: Xoshiro256PlusPlus,
}

impl NoiseRng {
    /// Deterministic generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        NoiseRng { inner: Xoshiro256PlusPlus::seed_from_u64(seed) }
    }

    /// Next word of the uniform stream.
    #[inline]
    fn take_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform deviate in `[0, 1)` from the top 53 bits of the next word.
    #[inline]
    fn take_f64(&mut self) -> f64 {
        (self.take_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Fork an independent child stream; the child's seed is drawn from the
    /// parent so sibling forks are decorrelated but fully reproducible.
    pub fn fork(&mut self) -> NoiseRng {
        let seed = self.take_u64();
        NoiseRng::seed_from_u64(seed)
    }

    /// The full 256-bit xoshiro256++ state, for serialization. A generator
    /// rebuilt with [`from_state`](NoiseRng::from_state) continues the bit
    /// stream exactly where this one stands — the primitive that session
    /// snapshots rely on to keep a stream's noise bit-identical across
    /// evict/restore. The sampler itself carries no other persistent state
    /// (the ziggurat tables are process-global constants and no spare
    /// deviate is cached), so these four words are the whole story.
    pub fn state(&self) -> [u64; 4] {
        self.inner.s
    }

    /// Rebuild a generator from a state previously captured with
    /// [`state`](NoiseRng::state).
    ///
    /// The all-zero state is a fixed point of xoshiro256++ (it would emit
    /// zeros forever); it can never be produced by
    /// [`seed_from_u64`](NoiseRng::seed_from_u64), so encountering it
    /// means the bytes are corrupt, and it is mapped to the
    /// SplitMix64-expanded seed-0 state instead of being honored.
    pub fn from_state(s: [u64; 4]) -> Self {
        if s == [0; 4] {
            return NoiseRng::seed_from_u64(0);
        }
        NoiseRng { inner: Xoshiro256PlusPlus { s } }
    }

    /// Uniform deviate in the open interval `(0, 1)` (never exactly 0, so it
    /// is safe inside logs).
    #[inline]
    pub fn uniform_open(&mut self) -> f64 {
        loop {
            let u: f64 = self.take_f64();
            if u > 0.0 && u < 1.0 {
                return u;
            }
        }
    }

    /// Uniform deviate in `[lo, hi)`.
    #[inline]
    pub fn uniform_in(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo < hi);
        lo + (hi - lo) * self.take_f64()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    #[inline]
    pub fn uniform_index(&mut self, n: usize) -> usize {
        assert!(n > 0, "uniform_index: empty range");
        // Modulo bias is ≤ n/2⁶⁴ — irrelevant at the index ranges used here.
        (self.take_u64() % n as u64) as usize
    }

    /// Standard normal deviate `N(0, 1)` via the 256-layer ziggurat.
    #[inline]
    pub fn standard_gaussian(&mut self) -> f64 {
        core_gaussian(&mut self.inner.s, zig_tables())
    }

    /// Standard normal deviate by the polar Box–Muller method — the
    /// pre-ziggurat sampler, kept as an independent reference for the
    /// statistical cross-validation tests and the `noise` benchmark.
    /// (Unlike the cached-spare variant it discards the second deviate of
    /// each accepted pair, so it is stateless.)
    pub fn standard_gaussian_box_muller(&mut self) -> f64 {
        loop {
            let u = 2.0 * self.take_f64() - 1.0;
            let v = 2.0 * self.take_f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }

    /// Gaussian deviate `N(mu, sigma²)`.
    ///
    /// # Panics
    /// Panics in debug builds if `sigma < 0`.
    #[inline]
    pub fn gaussian(&mut self, mu: f64, sigma: f64) -> f64 {
        debug_assert!(sigma >= 0.0, "gaussian: negative sigma");
        mu + sigma * self.standard_gaussian()
    }

    /// Fill `out` with i.i.d. `N(0, sigma²)` deviates in one pass — the
    /// slice-filling primitive the tree mechanisms' node perturbation and
    /// every `*_vec` convenience wrapper sit on. Draws exactly the same
    /// stream as `out.len()` successive [`standard_gaussian`] calls scaled
    /// by `sigma`.
    ///
    /// [`standard_gaussian`]: NoiseRng::standard_gaussian
    ///
    /// # Panics
    /// Panics in debug builds if `sigma < 0`.
    pub fn fill_gaussian(&mut self, out: &mut [f64], sigma: f64) {
        debug_assert!(sigma >= 0.0, "fill_gaussian: negative sigma");
        let tables = zig_tables();
        // Run the core on a local state copy so the four state words stay
        // in registers across the whole slice; write it back once.
        let mut s = self.inner.s;
        for x in out.iter_mut() {
            *x = sigma * core_gaussian(&mut s, tables);
        }
        self.inner.s = s;
    }

    /// Vector of `d` i.i.d. `N(0, sigma²)` deviates (allocating wrapper
    /// over [`fill_gaussian`](NoiseRng::fill_gaussian)).
    pub fn gaussian_vec(&mut self, d: usize, sigma: f64) -> Vec<f64> {
        let mut out = vec![0.0; d];
        self.fill_gaussian(&mut out, sigma);
        out
    }

    /// Laplace deviate with location 0 and the given `scale` parameter
    /// (variance `2·scale²`), via inverse-CDF sampling.
    ///
    /// # Panics
    /// Panics in debug builds if `scale < 0`.
    pub fn laplace(&mut self, scale: f64) -> f64 {
        debug_assert!(scale >= 0.0, "laplace: negative scale");
        core_laplace(&mut self.inner.s, scale)
    }

    /// Fill `out` with i.i.d. Laplace deviates in one pass; same stream as
    /// `out.len()` successive [`laplace`](NoiseRng::laplace) calls.
    ///
    /// # Panics
    /// Panics in debug builds if `scale < 0`.
    pub fn fill_laplace(&mut self, out: &mut [f64], scale: f64) {
        debug_assert!(scale >= 0.0, "fill_laplace: negative scale");
        // Same register-local state pattern as `fill_gaussian`.
        let mut s = self.inner.s;
        for x in out.iter_mut() {
            *x = core_laplace(&mut s, scale);
        }
        self.inner.s = s;
    }

    /// Vector of `d` i.i.d. Laplace deviates (allocating wrapper over
    /// [`fill_laplace`](NoiseRng::fill_laplace)).
    pub fn laplace_vec(&mut self, d: usize, scale: f64) -> Vec<f64> {
        let mut out = vec![0.0; d];
        self.fill_laplace(&mut out, scale);
        out
    }

    /// Uniform point on the unit sphere `S^{d-1}` (normalized Gaussian),
    /// written into a caller-provided buffer. The degenerate-norm retry
    /// refills the same buffer, so the whole draw is allocation-free.
    ///
    /// # Panics
    /// Panics if `out` is empty (there is no `S^{-1}`).
    pub fn unit_sphere_into(&mut self, out: &mut [f64]) {
        assert!(!out.is_empty(), "unit_sphere_into: empty buffer");
        loop {
            self.fill_gaussian(out, 1.0);
            let n = pir_linalg::vector::norm2(out);
            if n > 1e-12 {
                out.iter_mut().for_each(|x| *x /= n);
                return;
            }
        }
    }

    /// Uniform point on the unit sphere `S^{d-1}` (allocating wrapper over
    /// [`unit_sphere_into`](NoiseRng::unit_sphere_into)).
    pub fn unit_sphere(&mut self, d: usize) -> Vec<f64> {
        let mut out = vec![0.0; d];
        self.unit_sphere_into(&mut out);
        out
    }

    /// Random permutation indices `0..n` (Fisher–Yates).
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut p: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = self.uniform_index(i + 1);
            p.swap(i, j);
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = NoiseRng::seed_from_u64(7);
        let mut b = NoiseRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.standard_gaussian(), b.standard_gaussian());
            assert_eq!(a.laplace(1.0), b.laplace(1.0));
        }
    }

    #[test]
    fn forks_are_decorrelated_but_reproducible() {
        let mut parent1 = NoiseRng::seed_from_u64(1);
        let mut parent2 = NoiseRng::seed_from_u64(1);
        let mut c1 = parent1.fork();
        let mut c2 = parent2.fork();
        assert_eq!(c1.standard_gaussian(), c2.standard_gaussian());
        // Sibling forks differ.
        let mut c3 = parent1.fork();
        assert_ne!(c1.standard_gaussian(), c3.standard_gaussian());
    }

    #[test]
    fn state_roundtrip_continues_the_stream() {
        let mut a = NoiseRng::seed_from_u64(77);
        // Burn an odd amount of state so we are mid-stream.
        for _ in 0..123 {
            a.standard_gaussian();
        }
        let mut b = NoiseRng::from_state(a.state());
        for _ in 0..1000 {
            assert_eq!(a.standard_gaussian(), b.standard_gaussian());
            assert_eq!(a.laplace(0.3), b.laplace(0.3));
        }
    }

    #[test]
    fn stream_is_bit_identical_to_the_pr5_sampler() {
        // Golden values captured from the PR 5 implementation: no rewrite
        // of the sampler internals (the register-local fill cores
        // included) may change the logical stream for any consumer —
        // gaussian, laplace, fork, uniforms, or the state reported after
        // a long fill.
        let mut r = NoiseRng::seed_from_u64(0xDEAD_BEEF);
        let gauss: [u64; 8] = [
            13828421222867740395,
            13826330054981477070,
            4607852156724744037,
            13823430793222249643,
            4608835828437415293,
            13831064452055620384,
            4582007117665280707,
            4605232679948859960,
        ];
        for (i, &bits) in gauss.iter().enumerate() {
            assert_eq!(r.standard_gaussian().to_bits(), bits, "gaussian {i}");
        }
        let laplace: [u64; 4] = [
            13829765036741856836,
            13837296147890625375,
            13833792660060040923,
            13822364654128713556,
        ];
        for (i, &bits) in laplace.iter().enumerate() {
            assert_eq!(r.laplace(1.3).to_bits(), bits, "laplace {i}");
        }
        let mut f = r.fork();
        assert_eq!(f.standard_gaussian().to_bits(), 4604531043703559532);
        assert_eq!(r.uniform_in(-1.0, 1.0).to_bits(), 13807362007626701632);
        assert_eq!(r.uniform_index(1000), 469);
        let mut big = vec![0.0f64; 300];
        r.fill_gaussian(&mut big, 1.0);
        assert_eq!(big[299].to_bits(), 4597786636572150510);
        assert_eq!(
            r.state(),
            [5502021649887796075, 4567548101666587829, 17980768427063066239, 16170254277397279891]
        );
    }

    #[test]
    fn state_roundtrip_at_every_stream_offset() {
        // `state()` must report the exact stream position wherever the
        // generator stands — the offsets here would straddle the block
        // boundaries of any buffered rewrite that changed that contract.
        for burn in 0..(2 * 64 + 3) {
            let mut a = NoiseRng::seed_from_u64(0xB10C);
            for _ in 0..burn {
                a.uniform_index(usize::MAX);
            }
            let mut b = NoiseRng::from_state(a.state());
            for i in 0..130 {
                assert_eq!(
                    a.standard_gaussian().to_bits(),
                    b.standard_gaussian().to_bits(),
                    "burn {burn}, draw {i}"
                );
            }
        }
    }

    #[test]
    fn zero_state_is_rejected_not_honored() {
        let mut z = NoiseRng::from_state([0; 4]);
        let mut s = NoiseRng::seed_from_u64(0);
        assert_eq!(z.state(), s.state());
        assert_eq!(z.standard_gaussian(), s.standard_gaussian());
    }

    #[test]
    fn ziggurat_layers_tile_the_density() {
        // Construction invariants: edges strictly decrease from the virtual
        // base to the mode, densities strictly increase, and the recursion
        // closes — the top layer's implied area matches V.
        let t = zig_tables();
        assert!((t.x[1] - ZIG_R).abs() < 1e-15);
        assert_eq!(t.x[ZIG_LAYERS], 0.0);
        for i in 1..=ZIG_LAYERS {
            assert!(t.x[i] < t.x[i - 1], "edges must decrease at {i}");
            assert!(t.f[i] > t.f[i - 1], "densities must increase at {i}");
        }
        assert!((t.f[ZIG_LAYERS] - 1.0).abs() < 1e-15, "f(0) = 1");
        // Top-layer closure: x[255]·(1 − f(x[255])) ≈ V.
        let top = t.x[ZIG_LAYERS - 1] * (1.0 - t.f[ZIG_LAYERS - 1]);
        assert!((top - ZIG_V).abs() < 1e-6, "top layer area {top}");
    }

    #[test]
    fn gaussian_moments_are_approximately_correct() {
        let mut rng = NoiseRng::seed_from_u64(42);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.gaussian(2.0, 3.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
        assert!((var - 9.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn box_muller_reference_moments_agree_with_ziggurat() {
        let n = 200_000;
        let mut zig = NoiseRng::seed_from_u64(17);
        let mut bm = NoiseRng::seed_from_u64(18);
        let (mut mz, mut mb, mut vz, mut vb) = (0.0, 0.0, 0.0, 0.0);
        for _ in 0..n {
            let z = zig.standard_gaussian();
            let b = bm.standard_gaussian_box_muller();
            mz += z;
            mb += b;
            vz += z * z;
            vb += b * b;
        }
        let (mz, mb) = (mz / n as f64, mb / n as f64);
        let (vz, vb) = (vz / n as f64 - mz * mz, vb / n as f64 - mb * mb);
        assert!((mz - mb).abs() < 0.02, "means diverge: {mz} vs {mb}");
        assert!((vz - vb).abs() < 0.03, "variances diverge: {vz} vs {vb}");
    }

    #[test]
    fn fill_gaussian_matches_scalar_draws() {
        let mut a = NoiseRng::seed_from_u64(9);
        let mut b = NoiseRng::seed_from_u64(9);
        let mut buf = vec![0.0; 257];
        a.fill_gaussian(&mut buf, 2.5);
        for (i, &x) in buf.iter().enumerate() {
            assert_eq!(x, 2.5 * b.standard_gaussian(), "index {i}");
        }
    }

    #[test]
    fn fill_laplace_matches_scalar_draws() {
        let mut a = NoiseRng::seed_from_u64(10);
        let mut b = NoiseRng::seed_from_u64(10);
        let mut buf = vec![0.0; 129];
        a.fill_laplace(&mut buf, 0.7);
        for (i, &x) in buf.iter().enumerate() {
            assert_eq!(x, b.laplace(0.7), "index {i}");
        }
    }

    #[test]
    fn laplace_moments_are_approximately_correct() {
        let mut rng = NoiseRng::seed_from_u64(42);
        let n = 200_000;
        let b = 1.5;
        let samples: Vec<f64> = (0..n).map(|_| rng.laplace(b)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 2.0 * b * b).abs() < 0.25, "var {var}");
    }

    #[test]
    fn unit_sphere_has_unit_norm() {
        let mut rng = NoiseRng::seed_from_u64(3);
        for d in [1usize, 2, 10, 100] {
            let v = rng.unit_sphere(d);
            assert_eq!(v.len(), d);
            assert!((pir_linalg::vector::norm2(&v) - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn unit_sphere_into_matches_allocating() {
        let mut a = NoiseRng::seed_from_u64(21);
        let mut b = NoiseRng::seed_from_u64(21);
        let mut buf = vec![f64::NAN; 16];
        for _ in 0..10 {
            a.unit_sphere_into(&mut buf);
            assert_eq!(buf, b.unit_sphere(16));
        }
    }

    #[test]
    fn permutation_is_a_bijection() {
        let mut rng = NoiseRng::seed_from_u64(5);
        let p = rng.permutation(50);
        let mut seen = [false; 50];
        for &i in &p {
            assert!(!seen[i]);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn uniform_open_never_returns_endpoints() {
        let mut rng = NoiseRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let u = rng.uniform_open();
            assert!(u > 0.0 && u < 1.0);
        }
    }
}
