//! Seeded noise source.
//!
//! All privacy noise in the workspace flows through [`NoiseRng`] so that
//! experiments are exactly reproducible from a single `u64` seed and so that
//! the normal/Laplace deviate generation is self-contained (only the
//! generator's uniform bit stream is consumed). The bit stream is an
//! in-tree xoshiro256++ seeded through SplitMix64 — no external `rand`
//! dependency, which keeps the workspace buildable offline. Gaussians use
//! the polar Box–Muller method with a cached spare; Laplace uses
//! inverse-CDF sampling.

/// xoshiro256++ core generator (public-domain algorithm by Blackman &
/// Vigna): 256-bit state, passes BigCrush, and is cheap enough to sit on
/// the per-node noise path of the tree mechanisms.
#[derive(Debug, Clone)]
struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    /// Expand a 64-bit seed into the 256-bit state via SplitMix64 (the
    /// seeding procedure the xoshiro authors recommend).
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Xoshiro256PlusPlus { s: [next(), next(), next(), next()] }
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform deviate in `[0, 1)` from the top 53 bits.
    #[inline]
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A seedable random source producing the deviates the DP mechanisms need.
#[derive(Debug)]
pub struct NoiseRng {
    inner: Xoshiro256PlusPlus,
    spare_gaussian: Option<f64>,
}

impl NoiseRng {
    /// Deterministic generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        NoiseRng { inner: Xoshiro256PlusPlus::seed_from_u64(seed), spare_gaussian: None }
    }

    /// Fork an independent child stream; the child's seed is drawn from the
    /// parent so sibling forks are decorrelated but fully reproducible.
    pub fn fork(&mut self) -> NoiseRng {
        NoiseRng::seed_from_u64(self.inner.next_u64())
    }

    /// Uniform deviate in the open interval `(0, 1)` (never exactly 0, so it
    /// is safe inside logs).
    #[inline]
    pub fn uniform_open(&mut self) -> f64 {
        loop {
            let u: f64 = self.inner.next_f64();
            if u > 0.0 && u < 1.0 {
                return u;
            }
        }
    }

    /// Uniform deviate in `[lo, hi)`.
    #[inline]
    pub fn uniform_in(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo < hi);
        lo + (hi - lo) * self.inner.next_f64()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    #[inline]
    pub fn uniform_index(&mut self, n: usize) -> usize {
        assert!(n > 0, "uniform_index: empty range");
        // Modulo bias is ≤ n/2⁶⁴ — irrelevant at the index ranges used here.
        (self.inner.next_u64() % n as u64) as usize
    }

    /// Standard normal deviate `N(0, 1)` (polar Box–Muller).
    pub fn standard_gaussian(&mut self) -> f64 {
        if let Some(z) = self.spare_gaussian.take() {
            return z;
        }
        loop {
            let u = 2.0 * self.inner.next_f64() - 1.0;
            let v = 2.0 * self.inner.next_f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let f = (-2.0 * s.ln() / s).sqrt();
                self.spare_gaussian = Some(v * f);
                return u * f;
            }
        }
    }

    /// Gaussian deviate `N(mu, sigma²)`.
    ///
    /// # Panics
    /// Panics in debug builds if `sigma < 0`.
    #[inline]
    pub fn gaussian(&mut self, mu: f64, sigma: f64) -> f64 {
        debug_assert!(sigma >= 0.0, "gaussian: negative sigma");
        mu + sigma * self.standard_gaussian()
    }

    /// Vector of `d` i.i.d. `N(0, sigma²)` deviates.
    pub fn gaussian_vec(&mut self, d: usize, sigma: f64) -> Vec<f64> {
        (0..d).map(|_| self.gaussian(0.0, sigma)).collect()
    }

    /// Laplace deviate with location 0 and the given `scale` parameter
    /// (variance `2·scale²`), via inverse-CDF sampling.
    ///
    /// # Panics
    /// Panics in debug builds if `scale < 0`.
    pub fn laplace(&mut self, scale: f64) -> f64 {
        debug_assert!(scale >= 0.0, "laplace: negative scale");
        let u = self.uniform_open() - 0.5;
        -scale * u.signum() * (1.0 - 2.0 * u.abs()).ln()
    }

    /// Vector of `d` i.i.d. Laplace deviates.
    pub fn laplace_vec(&mut self, d: usize, scale: f64) -> Vec<f64> {
        (0..d).map(|_| self.laplace(scale)).collect()
    }

    /// Uniform point on the unit sphere `S^{d-1}` (normalized Gaussian).
    pub fn unit_sphere(&mut self, d: usize) -> Vec<f64> {
        loop {
            let g = self.gaussian_vec(d, 1.0);
            let n = pir_linalg::vector::norm2(&g);
            if n > 1e-12 {
                return pir_linalg::vector::scale(&g, 1.0 / n);
            }
        }
    }

    /// Random permutation indices `0..n` (Fisher–Yates).
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut p: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = self.uniform_index(i + 1);
            p.swap(i, j);
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = NoiseRng::seed_from_u64(7);
        let mut b = NoiseRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.standard_gaussian(), b.standard_gaussian());
            assert_eq!(a.laplace(1.0), b.laplace(1.0));
        }
    }

    #[test]
    fn forks_are_decorrelated_but_reproducible() {
        let mut parent1 = NoiseRng::seed_from_u64(1);
        let mut parent2 = NoiseRng::seed_from_u64(1);
        let mut c1 = parent1.fork();
        let mut c2 = parent2.fork();
        assert_eq!(c1.standard_gaussian(), c2.standard_gaussian());
        // Sibling forks differ.
        let mut c3 = parent1.fork();
        assert_ne!(c1.standard_gaussian(), c3.standard_gaussian());
    }

    #[test]
    fn gaussian_moments_are_approximately_correct() {
        let mut rng = NoiseRng::seed_from_u64(42);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.gaussian(2.0, 3.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
        assert!((var - 9.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn laplace_moments_are_approximately_correct() {
        let mut rng = NoiseRng::seed_from_u64(42);
        let n = 200_000;
        let b = 1.5;
        let samples: Vec<f64> = (0..n).map(|_| rng.laplace(b)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 2.0 * b * b).abs() < 0.25, "var {var}");
    }

    #[test]
    fn unit_sphere_has_unit_norm() {
        let mut rng = NoiseRng::seed_from_u64(3);
        for d in [1usize, 2, 10, 100] {
            let v = rng.unit_sphere(d);
            assert_eq!(v.len(), d);
            assert!((pir_linalg::vector::norm2(&v) - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn permutation_is_a_bijection() {
        let mut rng = NoiseRng::seed_from_u64(5);
        let p = rng.permutation(50);
        let mut seen = [false; 50];
        for &i in &p {
            assert!(!seen[i]);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn uniform_open_never_returns_endpoints() {
        let mut rng = NoiseRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let u = rng.uniform_open();
            assert!(u > 0.0 && u < 1.0);
        }
    }
}
