//! Composition theorems for differential privacy.
//!
//! - **Basic composition** (Theorem A.3, Dwork et al. `[14]`): `k` adaptive
//!   `(ε, δ)`-DP interactions are `(kε, kδ)`-DP.
//! - **Advanced composition** (Theorem A.4, Dwork–Rothblum–Vadhan `[19]`):
//!   for any `δ* > 0`, `k` adaptive `(ε, δ)`-DP interactions are
//!   `(ε√(2k ln(1/δ*)) + 2kε², kδ + δ*)`-DP.
//!
//! [`calibrate_advanced`] inverts the advanced bound the way Mechanism
//! `PrivIncERM` does in the paper's §3 proof: given a total budget `(ε, δ)`
//! and `k` planned interactions, it returns the per-interaction budget
//! `ε′ = ε / (2√(2k ln(2/δ)))`, `δ′ = δ/(2k)`, which composes back to at
//! most `(ε, δ)` whenever `ε ≤ 1` (the regime the theorem is stated for).

use crate::error::DpError;
use crate::params::PrivacyParams;
use crate::Result;

/// Basic composition (Theorem A.3): `k` uses of `(ε, δ)` cost `(kε, kδ)`.
///
/// # Errors
/// [`DpError::InvalidParams`] if the composed `δ` reaches 1.
pub fn basic(k: usize, per_use: &PrivacyParams) -> Result<PrivacyParams> {
    PrivacyParams::new(per_use.epsilon() * k as f64, per_use.delta() * k as f64)
}

/// Advanced composition (Theorem A.4): total privacy of `k` uses of
/// `(ε, δ)` with slack `δ*`.
///
/// # Errors
/// [`DpError::InvalidParams`] if `δ*` is out of `(0, 1)` or the composed
/// parameters leave their valid ranges.
pub fn advanced(k: usize, per_use: &PrivacyParams, delta_star: f64) -> Result<PrivacyParams> {
    if !(delta_star > 0.0 && delta_star < 1.0) {
        return Err(DpError::InvalidParams {
            reason: format!("delta_star must lie in (0,1), got {delta_star}"),
        });
    }
    let k = k as f64;
    let e = per_use.epsilon();
    let eps_total = e * (2.0 * k * (1.0 / delta_star).ln()).sqrt() + 2.0 * k * e * e;
    let delta_total = k * per_use.delta() + delta_star;
    PrivacyParams::new(eps_total, delta_total)
}

/// Per-interaction budget for `k` planned interactions under a total budget
/// `(ε, δ)`, using the paper's §3 schedule:
/// `ε′ = ε / (2√(2k ln(2/δ)))` and `δ′ = δ / (2k)`.
///
/// ```
/// use pir_dp::{composition, PrivacyParams};
///
/// let total = PrivacyParams::approx(1.0, 1e-6).unwrap();
/// let per_use = composition::calibrate_advanced(&total, 100).unwrap();
/// // Composing the 100 uses stays within the declared budget:
/// let composed = composition::verify_within_budget(100, &per_use, &total).unwrap();
/// assert!(composed.epsilon() <= 1.0 + 1e-9);
/// ```
///
/// With slack `δ* = δ/2`, advanced composition of `k` uses of `(ε′, δ′)`
/// yields `ε′√(2k ln(2/δ)) + 2kε′² = ε/2 + 2kε′² ≤ ε` whenever `ε ≤ 1`
/// (because then `2kε′² ≤ ε/2`; see the proof of Theorem 3.1), and total
/// delta `k·δ/(2k) + δ/2 = δ`.
///
/// # Errors
/// [`DpError::InvalidParams`] if `k == 0`, `δ = 0`, or the resulting
/// per-use parameters are invalid.
pub fn calibrate_advanced(total: &PrivacyParams, k: usize) -> Result<PrivacyParams> {
    if k == 0 {
        return Err(DpError::InvalidParams {
            reason: "cannot calibrate for k = 0 interactions".to_string(),
        });
    }
    if total.delta() == 0.0 {
        return Err(DpError::InvalidParams {
            reason: "advanced-composition calibration requires delta > 0".to_string(),
        });
    }
    let kf = k as f64;
    let eps_prime = total.epsilon() / (2.0 * (2.0 * kf * (2.0 / total.delta()).ln()).sqrt());
    let delta_prime = total.delta() / (2.0 * kf);
    PrivacyParams::new(eps_prime, delta_prime)
}

/// Check that `k` uses of `per_use` composed with slack `δ* = δ_total/2`
/// stay within `total`. Returns the composed parameters for inspection.
///
/// # Errors
/// [`DpError::BudgetExceeded`] when the composed cost is larger than
/// `total`; [`DpError::InvalidParams`] on malformed inputs.
pub fn verify_within_budget(
    k: usize,
    per_use: &PrivacyParams,
    total: &PrivacyParams,
) -> Result<PrivacyParams> {
    let composed = advanced(k, per_use, total.delta() / 2.0)?;
    // Tolerate tiny floating-point overshoot.
    let tol = 1e-12;
    if composed.epsilon() > total.epsilon() * (1.0 + tol)
        || composed.delta() > total.delta() * (1.0 + tol)
    {
        return Err(DpError::BudgetExceeded {
            attempted_epsilon: composed.epsilon(),
            attempted_delta: composed.delta(),
            budget_epsilon: total.epsilon(),
            budget_delta: total.delta(),
        });
    }
    Ok(composed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_composition_is_linear() {
        let p = PrivacyParams::new(0.1, 1e-6).unwrap();
        let c = basic(10, &p).unwrap();
        assert!((c.epsilon() - 1.0).abs() < 1e-12);
        assert!((c.delta() - 1e-5).abs() < 1e-18);
    }

    #[test]
    fn advanced_beats_basic_for_many_small_uses() {
        let p = PrivacyParams::new(0.01, 1e-8).unwrap();
        let k = 400;
        let adv = advanced(k, &p, 1e-6).unwrap();
        let bas = basic(k, &p).unwrap();
        assert!(adv.epsilon() < bas.epsilon(), "{} !< {}", adv.epsilon(), bas.epsilon());
    }

    #[test]
    fn calibration_respects_budget_for_eps_at_most_one() {
        for &eps in &[0.1, 0.5, 1.0] {
            for &k in &[1usize, 2, 7, 64, 1000] {
                let total = PrivacyParams::approx(eps, 1e-6).unwrap();
                let per = calibrate_advanced(&total, k).unwrap();
                let composed = verify_within_budget(k, &per, &total).unwrap();
                assert!(composed.epsilon() <= total.epsilon() + 1e-9);
                assert!(composed.delta() <= total.delta() + 1e-15);
            }
        }
    }

    #[test]
    fn calibration_rejects_degenerate_inputs() {
        let total = PrivacyParams::approx(1.0, 1e-6).unwrap();
        assert!(calibrate_advanced(&total, 0).is_err());
        let pure = PrivacyParams::new(1.0, 0.0).unwrap();
        assert!(calibrate_advanced(&pure, 5).is_err());
    }

    #[test]
    fn verify_flags_overdraft() {
        let total = PrivacyParams::approx(0.1, 1e-6).unwrap();
        let too_big = PrivacyParams::approx(0.1, 1e-7).unwrap();
        assert!(matches!(
            verify_within_budget(100, &too_big, &total),
            Err(DpError::BudgetExceeded { .. })
        ));
    }

    #[test]
    fn advanced_rejects_bad_slack() {
        let p = PrivacyParams::new(0.1, 1e-6).unwrap();
        assert!(advanced(10, &p, 0.0).is_err());
        assert!(advanced(10, &p, 1.0).is_err());
    }
}
