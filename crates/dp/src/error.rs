use std::fmt;

/// Errors produced by `pir-dp`.
#[derive(Debug, Clone, PartialEq)]
pub enum DpError {
    /// Privacy parameters are out of their valid range.
    InvalidParams {
        /// Explanation of the violated constraint.
        reason: String,
    },
    /// A privacy accountant charge would exceed the configured budget.
    BudgetExceeded {
        /// Epsilon already spent plus the attempted charge.
        attempted_epsilon: f64,
        /// Delta already spent plus the attempted charge.
        attempted_delta: f64,
        /// Configured epsilon budget.
        budget_epsilon: f64,
        /// Configured delta budget.
        budget_delta: f64,
    },
    /// A sensitivity bound was non-positive or non-finite.
    InvalidSensitivity {
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for DpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DpError::InvalidParams { reason } => write!(f, "invalid privacy parameters: {reason}"),
            DpError::BudgetExceeded {
                attempted_epsilon,
                attempted_delta,
                budget_epsilon,
                budget_delta,
            } => write!(
                f,
                "privacy budget exceeded: would spend (ε={attempted_epsilon}, δ={attempted_delta}) \
                 of budget (ε={budget_epsilon}, δ={budget_delta})"
            ),
            DpError::InvalidSensitivity { value } => {
                write!(f, "sensitivity must be positive and finite, got {value}")
            }
        }
    }
}

impl std::error::Error for DpError {}
