//! Output-perturbation mechanisms.
//!
//! The Gaussian mechanism follows the paper's Theorem A.2 (Framework of
//! Global Sensitivity): releasing `f(Γ) + Y` with
//! `Y ∼ N(0, 2 Δ₂² ln(2/δ) / ε²)^d` is `(ε, δ)`-differentially private when
//! `f` has L2-sensitivity `Δ₂`. The Laplace mechanism adds `Lap(Δ₁/ε)` noise
//! per coordinate for pure `ε`-DP.

use crate::error::DpError;
use crate::params::PrivacyParams;
use crate::rng::NoiseRng;
use crate::Result;

/// Standard deviation of the per-coordinate Gaussian noise prescribed by
/// Theorem A.2: `σ = Δ₂ · √(2 ln(2/δ)) / ε`.
///
/// # Errors
/// [`DpError::InvalidSensitivity`] for non-positive/non-finite `Δ₂`;
/// [`DpError::InvalidParams`] if `δ = 0` (the Gaussian mechanism needs
/// approximate DP).
pub fn gaussian_sigma(l2_sensitivity: f64, params: &PrivacyParams) -> Result<f64> {
    if !(l2_sensitivity.is_finite() && l2_sensitivity > 0.0) {
        return Err(DpError::InvalidSensitivity { value: l2_sensitivity });
    }
    if params.delta() == 0.0 {
        return Err(DpError::InvalidParams {
            reason: "Gaussian mechanism requires delta > 0".to_string(),
        });
    }
    Ok(l2_sensitivity * (2.0 * (2.0 / params.delta()).ln()).sqrt() / params.epsilon())
}

/// Gaussian mechanism: perturb `value` in place with i.i.d.
/// `N(0, σ²)` noise, `σ` per [`gaussian_sigma`].
///
/// Returns the `σ` actually used so callers can log/record it.
///
/// # Errors
/// As for [`gaussian_sigma`].
pub fn gaussian_mechanism(
    value: &mut [f64],
    l2_sensitivity: f64,
    params: &PrivacyParams,
    rng: &mut NoiseRng,
) -> Result<f64> {
    let sigma = gaussian_sigma(l2_sensitivity, params)?;
    for v in value.iter_mut() {
        *v += rng.gaussian(0.0, sigma);
    }
    Ok(sigma)
}

/// Scale parameter of per-coordinate Laplace noise: `b = Δ₁ / ε`.
///
/// # Errors
/// [`DpError::InvalidSensitivity`] for non-positive/non-finite `Δ₁`.
pub fn laplace_scale(l1_sensitivity: f64, params: &PrivacyParams) -> Result<f64> {
    if !(l1_sensitivity.is_finite() && l1_sensitivity > 0.0) {
        return Err(DpError::InvalidSensitivity { value: l1_sensitivity });
    }
    Ok(l1_sensitivity / params.epsilon())
}

/// Laplace mechanism: perturb `value` in place with i.i.d. `Lap(b)` noise,
/// `b` per [`laplace_scale`]. Pure `ε`-DP (`δ` is ignored).
///
/// Returns the scale `b` actually used.
///
/// # Errors
/// As for [`laplace_scale`].
pub fn laplace_mechanism(
    value: &mut [f64],
    l1_sensitivity: f64,
    params: &PrivacyParams,
    rng: &mut NoiseRng,
) -> Result<f64> {
    let b = laplace_scale(l1_sensitivity, params)?;
    for v in value.iter_mut() {
        *v += rng.laplace(b);
    }
    Ok(b)
}

/// High-probability bound on the L2 norm of a `d`-dimensional Gaussian noise
/// vector with per-coordinate deviation `σ`: with probability `≥ 1 − β`,
/// `‖Y‖ ≤ σ(√d + √(2 ln(1/β)))`.
///
/// This is the concentration inequality behind Proposition C.1 and
/// Lemma 4.1 of the paper; mechanisms expose it so utility bounds can be
/// computed alongside the noisy releases.
pub fn gaussian_norm_bound(d: usize, sigma: f64, beta: f64) -> f64 {
    debug_assert!(beta > 0.0 && beta < 1.0);
    sigma * ((d as f64).sqrt() + (2.0 * (1.0 / beta).ln()).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> PrivacyParams {
        PrivacyParams::approx(1.0, 1e-5).unwrap()
    }

    #[test]
    fn sigma_matches_theorem_a2_formula() {
        let p = params();
        let s = gaussian_sigma(2.0, &p).unwrap();
        let expect = 2.0 * (2.0f64 * (2e5f64).ln()).sqrt() / 1.0;
        assert!((s - expect).abs() < 1e-12);
    }

    #[test]
    fn sigma_scales_inversely_with_epsilon() {
        let p1 = PrivacyParams::approx(1.0, 1e-5).unwrap();
        let p2 = PrivacyParams::approx(2.0, 1e-5).unwrap();
        let s1 = gaussian_sigma(1.0, &p1).unwrap();
        let s2 = gaussian_sigma(1.0, &p2).unwrap();
        assert!((s1 / s2 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn gaussian_mechanism_rejects_pure_dp_and_bad_sensitivity() {
        let pure = PrivacyParams::new(1.0, 0.0).unwrap();
        let mut v = [0.0];
        let mut rng = NoiseRng::seed_from_u64(0);
        assert!(gaussian_mechanism(&mut v, 1.0, &pure, &mut rng).is_err());
        assert!(gaussian_mechanism(&mut v, 0.0, &params(), &mut rng).is_err());
        assert!(gaussian_mechanism(&mut v, f64::NAN, &params(), &mut rng).is_err());
    }

    #[test]
    fn gaussian_mechanism_empirical_variance() {
        let p = params();
        let mut rng = NoiseRng::seed_from_u64(11);
        let sigma = gaussian_sigma(1.0, &p).unwrap();
        let n = 100_000;
        let mut buf = vec![0.0; n];
        gaussian_mechanism(&mut buf, 1.0, &p, &mut rng).unwrap();
        let mean = buf.iter().sum::<f64>() / n as f64;
        let var = buf.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((var / (sigma * sigma) - 1.0).abs() < 0.05, "var ratio off");
    }

    #[test]
    fn laplace_mechanism_empirical_variance() {
        let p = PrivacyParams::new(0.5, 0.0).unwrap();
        let mut rng = NoiseRng::seed_from_u64(12);
        let b = laplace_scale(1.0, &p).unwrap();
        assert_eq!(b, 2.0);
        let n = 100_000;
        let mut buf = vec![0.0; n];
        laplace_mechanism(&mut buf, 1.0, &p, &mut rng).unwrap();
        let var = buf.iter().map(|x| x * x).sum::<f64>() / n as f64;
        assert!((var / (2.0 * b * b) - 1.0).abs() < 0.07, "var ratio off: {var}");
    }

    #[test]
    fn norm_bound_holds_empirically() {
        let mut rng = NoiseRng::seed_from_u64(13);
        let (d, sigma, beta) = (50usize, 2.0, 0.01);
        let bound = gaussian_norm_bound(d, sigma, beta);
        let trials = 2_000;
        let violations = (0..trials)
            .filter(|_| {
                let y = rng.gaussian_vec(d, sigma);
                pir_linalg::vector::norm2(&y) > bound
            })
            .count();
        // Expected violation rate ≤ β = 1%; allow slack for sampling error.
        assert!(violations as f64 / trials as f64 <= 3.0 * beta, "violations {violations}");
    }

    #[test]
    fn noiseless_limit_epsilon_large() {
        // As ε → ∞ the Gaussian noise vanishes: releases converge to truth.
        let p = PrivacyParams::approx(1e9, 1e-5).unwrap();
        let mut v = [5.0, -3.0];
        let mut rng = NoiseRng::seed_from_u64(1);
        gaussian_mechanism(&mut v, 1.0, &p, &mut rng).unwrap();
        assert!((v[0] - 5.0).abs() < 1e-6);
        assert!((v[1] + 3.0).abs() < 1e-6);
    }
}
