//! # pir-dp
//!
//! Differential-privacy primitives for the `private-incremental-regression`
//! workspace: privacy parameters with validation, calibrated Gaussian and
//! Laplace mechanisms (Theorem A.2 of the paper), basic and advanced
//! composition (Theorems A.3/A.4), a per-run privacy accountant, and a
//! self-contained seeded noise source.
//!
//! ## Neighboring-stream semantics
//!
//! Throughout the workspace, two streams are *neighbors* when one datapoint
//! `z ∈ Γ` is replaced by some `z′ ∈ Z` (event-level differential privacy,
//! Definition 4 of the paper). Sensitivities passed to the mechanisms here
//! must be computed under that replacement semantics — e.g. a stream of
//! vectors with `‖υ‖ ≤ 1` has L2-sensitivity `Δ₂ = 2` for its running sum.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod accountant;
pub mod composition;
mod error;
pub mod mechanisms;
mod params;
pub mod rng;

pub use accountant::PrivacyAccountant;
pub use error::DpError;
pub use params::PrivacyParams;
pub use rng::NoiseRng;

/// Convenient result alias for fallible DP operations.
pub type Result<T> = std::result::Result<T, DpError>;
