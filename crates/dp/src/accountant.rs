//! A simple ledger-style privacy accountant.
//!
//! Mechanisms in this workspace pre-split their budgets analytically (the
//! paper's algorithms fix their schedules up front), so the accountant's job
//! is *defense in depth*: every noisy release records a charge, totals are
//! tracked under basic composition across charge groups (each group may
//! internally use advanced composition via
//! [`crate::composition::calibrate_advanced`]),
//! and an overdraft is an error rather than a silent privacy failure.

use crate::composition;
use crate::error::DpError;
use crate::params::PrivacyParams;
use crate::Result;

/// One named charge against the budget.
#[derive(Debug, Clone)]
pub struct Charge {
    /// Human-readable mechanism label, e.g. `"tree-mech q_t"`.
    pub label: String,
    /// Cost of this charge at the *top level* (already composed internally).
    pub cost: PrivacyParams,
}

/// Ledger of privacy charges against a fixed `(ε, δ)` budget.
///
/// Charges compose *basically* (Theorem A.3) at the top level: the paper's
/// algorithms run a constant number of sub-mechanisms (e.g. the two Tree
/// Mechanism instances of Algorithm 2 at `(ε/2, δ/2)` each), so basic
/// composition is exact there. Sub-mechanisms that internally perform many
/// adaptive interactions should compose those internally (advanced
/// composition) and record a single top-level charge.
#[derive(Debug, Clone)]
pub struct PrivacyAccountant {
    budget: PrivacyParams,
    charges: Vec<Charge>,
    spent_epsilon: f64,
    spent_delta: f64,
}

impl PrivacyAccountant {
    /// New accountant with the given total budget.
    pub fn new(budget: PrivacyParams) -> Self {
        PrivacyAccountant { budget, charges: Vec::new(), spent_epsilon: 0.0, spent_delta: 0.0 }
    }

    /// The configured total budget.
    pub fn budget(&self) -> PrivacyParams {
        self.budget
    }

    /// Total spent so far under basic composition of the recorded charges.
    pub fn spent(&self) -> (f64, f64) {
        (self.spent_epsilon, self.spent_delta)
    }

    /// Remaining budget `(ε, δ)`; clamped at zero.
    pub fn remaining(&self) -> (f64, f64) {
        (
            (self.budget.epsilon() - self.spent_epsilon).max(0.0),
            (self.budget.delta() - self.spent_delta).max(0.0),
        )
    }

    /// The recorded charges, in order.
    pub fn charges(&self) -> &[Charge] {
        &self.charges
    }

    /// Record a charge, failing if it would exceed the budget.
    ///
    /// # Errors
    /// [`DpError::BudgetExceeded`] on overdraft (with a tiny floating-point
    /// tolerance so exact pre-splits like `ε/2 + ε/2` pass).
    pub fn charge(&mut self, label: impl Into<String>, cost: PrivacyParams) -> Result<()> {
        let ne = self.spent_epsilon + cost.epsilon();
        let nd = self.spent_delta + cost.delta();
        let tol = 1e-9;
        if ne > self.budget.epsilon() * (1.0 + tol) + tol
            || nd > self.budget.delta() * (1.0 + tol) + f64::EPSILON
        {
            return Err(DpError::BudgetExceeded {
                attempted_epsilon: ne,
                attempted_delta: nd,
                budget_epsilon: self.budget.epsilon(),
                budget_delta: self.budget.delta(),
            });
        }
        self.spent_epsilon = ne;
        self.spent_delta = nd;
        self.charges.push(Charge { label: label.into(), cost });
        Ok(())
    }

    /// Record a group of `k` adaptive interactions at `per_use` composed
    /// *advancedly* with slack `δ* = budget.δ/2`, as a single charge.
    ///
    /// # Errors
    /// Propagates composition errors and overdraft.
    pub fn charge_advanced_group(
        &mut self,
        label: impl Into<String>,
        k: usize,
        per_use: &PrivacyParams,
    ) -> Result<PrivacyParams> {
        let composed = composition::advanced(k, per_use, self.budget.delta() / 2.0)?;
        self.charge(label, composed)?;
        Ok(composed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn budget() -> PrivacyParams {
        PrivacyParams::approx(1.0, 1e-4).unwrap()
    }

    #[test]
    fn exact_half_splits_fit() {
        let mut acc = PrivacyAccountant::new(budget());
        let half = budget().halve();
        acc.charge("tree q", half).unwrap();
        acc.charge("tree Q", half).unwrap();
        let (e, d) = acc.spent();
        assert!((e - 1.0).abs() < 1e-12);
        assert!((d - 1e-4).abs() < 1e-15);
        assert_eq!(acc.charges().len(), 2);
    }

    #[test]
    fn overdraft_is_rejected_and_state_unchanged() {
        let mut acc = PrivacyAccountant::new(budget());
        acc.charge("a", PrivacyParams::new(0.9, 0.0).unwrap()).unwrap();
        let err = acc.charge("b", PrivacyParams::new(0.2, 0.0).unwrap());
        assert!(matches!(err, Err(DpError::BudgetExceeded { .. })));
        let (e, _) = acc.spent();
        assert!((e - 0.9).abs() < 1e-12);
        assert_eq!(acc.charges().len(), 1);
    }

    #[test]
    fn advanced_group_is_cheaper_than_basic_for_many_uses() {
        let mut acc = PrivacyAccountant::new(budget());
        let per = PrivacyParams::approx(0.005, 1e-9).unwrap();
        let composed = acc.charge_advanced_group("noisy-gd iters", 200, &per).unwrap();
        assert!(composed.epsilon() < 200.0 * per.epsilon());
        assert!(acc.remaining().0 > 0.0);
    }

    #[test]
    fn remaining_clamps_at_zero() {
        let mut acc = PrivacyAccountant::new(PrivacyParams::new(0.5, 0.0).unwrap());
        acc.charge("all", PrivacyParams::new(0.5, 0.0).unwrap()).unwrap();
        assert_eq!(acc.remaining(), (0.0, 0.0));
    }
}
