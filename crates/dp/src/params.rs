use crate::error::DpError;
use crate::Result;

/// `(ε, δ)` differential-privacy parameters (Definition 4 of the paper).
///
/// `ε` is a positive, finite privacy-loss bound; `δ ∈ [0, 1)` is the
/// probability with which that bound may fail. `δ = 0` is pure DP (only the
/// Laplace mechanism supports it; the Gaussian mechanism requires `δ > 0`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrivacyParams {
    epsilon: f64,
    delta: f64,
}

impl PrivacyParams {
    /// Construct validated parameters.
    ///
    /// # Errors
    /// [`DpError::InvalidParams`] unless `ε > 0` finite and `0 ≤ δ < 1`.
    pub fn new(epsilon: f64, delta: f64) -> Result<Self> {
        if !(epsilon.is_finite() && epsilon > 0.0) {
            return Err(DpError::InvalidParams {
                reason: format!("epsilon must be positive and finite, got {epsilon}"),
            });
        }
        if !(delta.is_finite() && (0.0..1.0).contains(&delta)) {
            return Err(DpError::InvalidParams {
                reason: format!("delta must lie in [0, 1), got {delta}"),
            });
        }
        Ok(PrivacyParams { epsilon, delta })
    }

    /// Approximate-DP parameters, requiring `δ > 0` (needed by the Gaussian
    /// mechanism of Theorem A.2).
    ///
    /// # Errors
    /// [`DpError::InvalidParams`] if `δ = 0` or any bound of [`Self::new`].
    pub fn approx(epsilon: f64, delta: f64) -> Result<Self> {
        let p = Self::new(epsilon, delta)?;
        if p.delta == 0.0 {
            return Err(DpError::InvalidParams {
                reason: "approximate DP requires delta > 0".to_string(),
            });
        }
        Ok(p)
    }

    /// The privacy-loss bound `ε`.
    #[inline]
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The failure probability `δ`.
    #[inline]
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Split the budget evenly into `k` parts `(ε/k, δ/k)`; composing the
    /// parts with basic composition (Theorem A.3) returns exactly `self`.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn split(&self, k: usize) -> PrivacyParams {
        assert!(k > 0, "cannot split a privacy budget into 0 parts");
        PrivacyParams { epsilon: self.epsilon / k as f64, delta: self.delta / k as f64 }
    }

    /// Halve the budget — the `(ε/2, δ/2)` split used by Algorithms 2 and 3
    /// to run two Tree Mechanism instances side by side.
    pub fn halve(&self) -> PrivacyParams {
        self.split(2)
    }
}

impl std::fmt::Display for PrivacyParams {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(ε={}, δ={})", self.epsilon, self.delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_rejects_invalid() {
        assert!(PrivacyParams::new(1.0, 1e-6).is_ok());
        assert!(PrivacyParams::new(1.0, 0.0).is_ok());
        assert!(PrivacyParams::new(0.0, 0.1).is_err());
        assert!(PrivacyParams::new(-1.0, 0.1).is_err());
        assert!(PrivacyParams::new(f64::INFINITY, 0.1).is_err());
        assert!(PrivacyParams::new(1.0, 1.0).is_err());
        assert!(PrivacyParams::new(1.0, f64::NAN).is_err());
        assert!(PrivacyParams::approx(1.0, 0.0).is_err());
        assert!(PrivacyParams::approx(1.0, 1e-9).is_ok());
    }

    #[test]
    fn split_divides_evenly() {
        let p = PrivacyParams::new(1.0, 1e-4).unwrap();
        let q = p.split(4);
        assert_eq!(q.epsilon(), 0.25);
        assert_eq!(q.delta(), 2.5e-5);
        let h = p.halve();
        assert_eq!(h.epsilon(), 0.5);
    }

    #[test]
    #[should_panic(expected = "0 parts")]
    fn split_zero_panics() {
        let _ = PrivacyParams::new(1.0, 0.0).unwrap().split(0);
    }
}
