//! Property tests for DP primitives.

use pir_dp::{composition, mechanisms, NoiseRng, PrivacyParams};
use proptest::prelude::*;

proptest! {
    #[test]
    fn sigma_monotone_in_sensitivity_and_inverse_in_epsilon(
        s1 in 0.01f64..10.0,
        s2 in 0.01f64..10.0,
        eps in 0.05f64..5.0,
    ) {
        let p = PrivacyParams::approx(eps, 1e-6).unwrap();
        let (lo, hi) = if s1 < s2 { (s1, s2) } else { (s2, s1) };
        let sig_lo = mechanisms::gaussian_sigma(lo, &p).unwrap();
        let sig_hi = mechanisms::gaussian_sigma(hi, &p).unwrap();
        prop_assert!(sig_lo <= sig_hi + 1e-15);

        let p2 = PrivacyParams::approx(2.0 * eps, 1e-6).unwrap();
        let a = mechanisms::gaussian_sigma(1.0, &p).unwrap();
        let b = mechanisms::gaussian_sigma(1.0, &p2).unwrap();
        prop_assert!((a / b - 2.0).abs() < 1e-9);
    }

    #[test]
    fn advanced_composition_monotone_in_k(
        eps in 0.001f64..0.05,
        k1 in 1usize..200,
        k2 in 1usize..200,
    ) {
        let p = PrivacyParams::approx(eps, 1e-9).unwrap();
        let (lo, hi) = if k1 < k2 { (k1, k2) } else { (k2, k1) };
        let a = composition::advanced(lo, &p, 1e-6).unwrap();
        let b = composition::advanced(hi, &p, 1e-6).unwrap();
        prop_assert!(a.epsilon() <= b.epsilon() + 1e-12);
        prop_assert!(a.delta() <= b.delta() + 1e-18);
    }

    #[test]
    fn calibrated_schedule_always_fits_budget(
        eps in 0.01f64..1.0,
        delta_exp in 3.0f64..9.0,
        k in 1usize..2000,
    ) {
        let total = PrivacyParams::approx(eps, 10f64.powf(-delta_exp)).unwrap();
        let per = composition::calibrate_advanced(&total, k).unwrap();
        let composed = composition::verify_within_budget(k, &per, &total).unwrap();
        prop_assert!(composed.epsilon() <= total.epsilon() * (1.0 + 1e-9));
        prop_assert!(composed.delta() <= total.delta() * (1.0 + 1e-9));
    }

    #[test]
    fn noise_rng_gaussian_is_symmetric_in_distribution(seed in any::<u64>()) {
        // Weak check: mean of a modest sample is near 0 relative to stddev.
        let mut rng = NoiseRng::seed_from_u64(seed);
        let n = 4000;
        let mean: f64 = (0..n).map(|_| rng.standard_gaussian()).sum::<f64>() / n as f64;
        prop_assert!(mean.abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn basic_composition_matches_split_roundtrip(
        eps in 0.01f64..10.0,
        delta in 0.0f64..0.1,
        k in 1usize..50,
    ) {
        let p = PrivacyParams::new(eps, delta).unwrap();
        let per = p.split(k);
        let back = composition::basic(k, &per).unwrap();
        prop_assert!((back.epsilon() - eps).abs() < 1e-9 * eps.max(1.0));
        prop_assert!((back.delta() - delta).abs() < 1e-12);
    }
}
