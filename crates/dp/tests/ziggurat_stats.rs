//! Statistical acceptance suite for the ziggurat standard-normal sampler.
//!
//! The ziggurat is an exact rejection sampler — these tests are not
//! calibrating a tolerance against an approximation, they are guarding
//! against *implementation* bugs (wrong table constants, a flipped wedge
//! test, a broken tail) that would shift moments, tail mass, or the whole
//! CDF. Everything is seeded, so each check is deterministic; tolerances
//! are set several standard errors wide so they are robust to the specific
//! bit stream, not tuned to it.

use pir_dp::NoiseRng;

/// Standard normal CDF `Φ(x)` via the Abramowitz–Stegun 7.1.26 `erf`
/// approximation (absolute error < 1.5e-7 — far below every tolerance
/// used here).
fn phi(x: f64) -> f64 {
    let z = x / std::f64::consts::SQRT_2;
    let (z, sign) = if z < 0.0 { (-z, -1.0) } else { (z, 1.0) };
    let t = 1.0 / (1.0 + 0.327_591_1 * z);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    let erf = sign * (1.0 - poly * (-z * z).exp());
    0.5 * (1.0 + erf)
}

#[test]
fn moments_match_standard_normal() {
    let mut rng = NoiseRng::seed_from_u64(0xD1CE);
    let n = 400_000usize;
    let (mut m1, mut m2, mut m4) = (0.0, 0.0, 0.0);
    for _ in 0..n {
        let z = rng.standard_gaussian();
        m1 += z;
        m2 += z * z;
        m4 += z * z * z * z;
    }
    let mean = m1 / n as f64;
    let var = m2 / n as f64 - mean * mean;
    let kurt = (m4 / n as f64) / (var * var);
    // Standard errors at n = 4e5: mean ~0.0016, var ~0.0022, kurt ~0.0077.
    assert!(mean.abs() < 0.01, "mean {mean}");
    assert!((var - 1.0).abs() < 0.02, "variance {var}");
    assert!((kurt - 3.0).abs() < 0.1, "kurtosis {kurt}");
}

#[test]
fn tail_mass_beyond_three_sigma() {
    // P(|Z| > 3) = 2(1 − Φ(3)) ≈ 2.6998e-3; a sampler whose tail path is
    // broken (the classic ziggurat bug class) misses this badly.
    let mut rng = NoiseRng::seed_from_u64(0x7A11);
    let n = 1_000_000usize;
    let beyond_3 = (0..n).filter(|_| rng.standard_gaussian().abs() > 3.0).count() as f64;
    let expect_3 = 2.0 * (1.0 - phi(3.0)) * n as f64; // ≈ 2700, sd ≈ 52
    assert!(
        (beyond_3 - expect_3).abs() < 0.1 * expect_3,
        "3σ tail count {beyond_3}, expected ≈ {expect_3:.0}"
    );
    // Beyond the rightmost layer edge R ≈ 3.654 every draw comes from the
    // exponential fallback; its mass must still be Gaussian.
    let mut rng = NoiseRng::seed_from_u64(0x7A12);
    let beyond_r =
        (0..n).filter(|_| rng.standard_gaussian().abs() > 3.654_152_885_361_009).count() as f64;
    let expect_r = 2.0 * (1.0 - phi(3.654_152_885_361_009)) * n as f64; // ≈ 259, sd ≈ 16
    assert!(
        (beyond_r - expect_r).abs() < 0.3 * expect_r,
        "tail-fallback count {beyond_r}, expected ≈ {expect_r:.0}"
    );
}

#[test]
fn kolmogorov_smirnov_against_phi() {
    // Coarse one-sample KS test: D_n = sup |F_n − Φ|. At n = 1e5 the 1%
    // critical value is ≈ 1.63/√n ≈ 0.0052; a table/layer bug shows up at
    // 10× that scale.
    let mut rng = NoiseRng::seed_from_u64(0x05D1);
    let n = 100_000usize;
    let mut samples: Vec<f64> = (0..n).map(|_| rng.standard_gaussian()).collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    let mut d_stat = 0.0f64;
    for (i, &x) in samples.iter().enumerate() {
        let cdf = phi(x);
        let lo = i as f64 / n as f64;
        let hi = (i + 1) as f64 / n as f64;
        d_stat = d_stat.max((cdf - lo).abs()).max((hi - cdf).abs());
    }
    assert!(d_stat < 0.0065, "KS statistic {d_stat}");
}

#[test]
fn two_sample_ks_ziggurat_vs_box_muller() {
    // Cross-validation against the retained polar Box–Muller reference:
    // both samplers target N(0,1), so a two-sample KS statistic at
    // n = m = 1e5 should sit near its null distribution
    // (1% critical value ≈ 1.63·√(2/n) ≈ 0.0073).
    let n = 100_000usize;
    let mut zig_rng = NoiseRng::seed_from_u64(0x2B1D);
    let mut bm_rng = NoiseRng::seed_from_u64(0x2B1E);
    let mut zig: Vec<f64> = (0..n).map(|_| zig_rng.standard_gaussian()).collect();
    let mut bm: Vec<f64> = (0..n).map(|_| bm_rng.standard_gaussian_box_muller()).collect();
    zig.sort_by(|a, b| a.total_cmp(b));
    bm.sort_by(|a, b| a.total_cmp(b));
    let (mut i, mut j, mut d_stat) = (0usize, 0usize, 0.0f64);
    while i < n && j < n {
        if zig[i] <= bm[j] {
            i += 1;
        } else {
            j += 1;
        }
        d_stat = d_stat.max((i as f64 / n as f64 - j as f64 / n as f64).abs());
    }
    assert!(d_stat < 0.009, "two-sample KS statistic {d_stat}");
}

#[test]
fn fill_gaussian_scales_variance_by_sigma_squared() {
    let mut rng = NoiseRng::seed_from_u64(0xF111);
    let sigma = 4.5;
    let mut buf = vec![0.0; 200_000];
    rng.fill_gaussian(&mut buf, sigma);
    let n = buf.len() as f64;
    let mean = buf.iter().sum::<f64>() / n;
    let var = buf.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
    assert!(mean.abs() < 0.05, "mean {mean}");
    assert!((var / (sigma * sigma) - 1.0).abs() < 0.02, "variance ratio off: {var}");
}
