//! Adaptive covariate choice against a fixed sketch `Φ` — the failure
//! mode of vanilla Johnson–Lindenstrauss under adaptivity (§5 of the
//! paper, footnote 10) and the threat model Gordon's theorem neutralizes.
//!
//! A JL guarantee holds for points chosen *before* `Φ`; once releases
//! depend on `Φ`, an adversary can steer later covariates toward the
//! null space of `Φ`, making `‖Φx‖ ≪ ‖x‖` and corrupting the projected
//! regression. Gordon's theorem is immune *within a set `S` of bounded
//! width*: if `m ≳ w(S)²/γ²`, **no** point of `S` — adaptively chosen or
//! not — has distortion above `γ`. Experiment E9 measures exactly this:
//! unconstrained adversaries achieve distortion ≈ 1, while `S`-restricted
//! adversaries are capped near `γ`.

use pir_dp::NoiseRng;
use pir_linalg::{vector, CholeskyFactor};
use pir_sketch::GaussianSketch;

/// An unconstrained adaptive direction: a unit vector in the null space
/// of `Φ` (so `Φx = 0` exactly while `‖x‖ = 1`) — the strongest possible
/// distortion. Exists whenever `m < d`. Returns `None` for `m ≥ d` or if
/// the Gram factorization fails.
pub fn null_space_direction(sketch: &GaussianSketch, rng: &mut NoiseRng) -> Option<Vec<f64>> {
    if sketch.m() >= sketch.d() {
        return None;
    }
    let gram = sketch.matrix().gram_rows();
    let chol = CholeskyFactor::factor(&gram, 1e-10).ok()?;
    // Project a random direction onto ker Φ: x − Φᵀ(ΦΦᵀ)⁻¹Φx.
    for _ in 0..16 {
        let x = rng.unit_sphere(sketch.d());
        let px = sketch.apply(&x).ok()?;
        let z = chol.solve(&px).ok()?;
        let corr = sketch.apply_t(&z).ok()?;
        let resid = vector::sub(&x, &corr);
        if let Some(u) = vector::normalize(&resid) {
            return Some(u);
        }
    }
    None
}

/// A `k`-sparse adaptive direction: the adversary is *restricted to the
/// domain* `S` of k-sparse unit vectors and searches `tries` random
/// supports, on each solving for the direction minimizing `‖Φx‖/‖x‖`
/// within the support (smallest singular direction of the `m×k` column
/// submatrix, found by inverse power iteration on the `k×k` Gram).
///
/// Returns the worst direction found and its achieved distortion
/// `|‖Φx‖² − 1|` (for the unit vector `x`).
pub fn worst_sparse_direction(
    sketch: &GaussianSketch,
    k: usize,
    tries: usize,
    rng: &mut NoiseRng,
) -> (Vec<f64>, f64) {
    assert!(k >= 1 && k <= sketch.d());
    assert!(tries >= 1);
    let d = sketch.d();
    let mut best_x = vector::basis(d, 0);
    let mut best_dist = {
        let px = sketch.apply(&best_x).expect("dims fixed");
        (vector::norm2_sq(&px) - 1.0).abs()
    };
    for _ in 0..tries {
        let perm = rng.permutation(d);
        let support: Vec<usize> = perm[..k].to_vec();
        // k×k Gram of the selected columns.
        let mut gram = pir_linalg::Matrix::zeros(k, k);
        for (a, &ia) in support.iter().enumerate() {
            for (b, &ib) in support.iter().enumerate() {
                let mut s = 0.0;
                for r in 0..sketch.m() {
                    s += sketch.matrix().get(r, ia) * sketch.matrix().get(r, ib);
                }
                gram.set(a, b, s);
            }
        }
        // Inverse power iteration for the smallest eigenvector.
        let chol = match CholeskyFactor::factor(&gram, 1e-9) {
            Ok(c) => c,
            Err(_) => continue,
        };
        let mut v = vec![1.0 / (k as f64).sqrt(); k];
        for _ in 0..50 {
            let w = match chol.solve(&v) {
                Ok(w) => w,
                Err(_) => break,
            };
            if let Some(u) = vector::normalize(&w) {
                v = u;
            } else {
                break;
            }
        }
        let mut x = vec![0.0; d];
        for (a, &ia) in support.iter().enumerate() {
            x[ia] = v[a];
        }
        if let Some(u) = vector::normalize(&x) {
            let px = sketch.apply(&u).expect("dims fixed");
            let dist = (vector::norm2_sq(&px) - 1.0).abs();
            if dist > best_dist {
                best_dist = dist;
                best_x = u;
            }
        }
    }
    (best_x, best_dist)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_space_attack_achieves_full_distortion() {
        let mut rng = NoiseRng::seed_from_u64(1);
        let sketch = GaussianSketch::sample(8, 40, &mut rng);
        let x = null_space_direction(&sketch, &mut rng).expect("null space exists");
        assert!((vector::norm2(&x) - 1.0).abs() < 1e-9);
        let px = sketch.apply(&x).unwrap();
        assert!(vector::norm2(&px) < 1e-6, "‖Φx‖ = {}", vector::norm2(&px));
    }

    #[test]
    fn no_null_space_when_m_geq_d() {
        let mut rng = NoiseRng::seed_from_u64(2);
        let sketch = GaussianSketch::sample(10, 10, &mut rng);
        assert!(null_space_direction(&sketch, &mut rng).is_none());
    }

    #[test]
    fn sparse_adversary_is_weaker_than_unconstrained_at_gordon_m() {
        // m sized well above w(k-sparse)² keeps even the adaptive sparse
        // adversary's distortion moderate, while the unconstrained one
        // achieves distortion 1 (null space).
        let mut rng = NoiseRng::seed_from_u64(3);
        let d = 120;
        let k = 2;
        let sketch = GaussianSketch::sample(60, d, &mut rng);
        let (_x, dist) = worst_sparse_direction(&sketch, k, 60, &mut rng);
        assert!(dist < 0.9, "sparse adversary distortion {dist}");
        let null = null_space_direction(&sketch, &mut rng).unwrap();
        let null_dist = (vector::norm2_sq(&sketch.apply(&null).unwrap()) - 1.0).abs();
        assert!(null_dist > 0.99);
        assert!(dist < null_dist);
    }

    #[test]
    fn sparse_adversary_worsens_when_m_shrinks() {
        let mut rng = NoiseRng::seed_from_u64(4);
        let d = 120;
        let (_, d_small) =
            worst_sparse_direction(&GaussianSketch::sample(4, d, &mut rng), 3, 40, &mut rng);
        let (_, d_large) =
            worst_sparse_direction(&GaussianSketch::sample(80, d, &mut rng), 3, 40, &mut rng);
        assert!(d_small > d_large, "small-m {d_small} !> large-m {d_large}");
    }
}
