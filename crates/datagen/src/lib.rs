//! # pir-datagen
//!
//! Synthetic stream generators for the experiments: every generator
//! guarantees the paper's §2 normalization (`‖x‖₂ ≤ 1`, `|y| ≤ 1`) so its
//! output can be fed to any mechanism without further preprocessing.
//!
//! Families:
//! - [`linear_stream`] — `y = ⟨x, θ*⟩ + w` with dense-Gaussian, k-sparse,
//!   or L1-bounded covariates (the §5.2 instances);
//! - [`classification_stream`] — logistic labels in `{−1, +1}` for the
//!   generic-ERM experiments (E1);
//! - [`drift_stream`] — the survey-monitoring motivation of §1: the true
//!   parameter moves mid-stream;
//! - [`mixture_stream`] — §5.2 robust extension: a `p_off` fraction of
//!   covariates falls outside the low-width domain `G`;
//! - [`adaptive`] — adversarial covariate choice against a *fixed* sketch
//!   `Φ` (the failure mode Gordon's theorem defends against, E9).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod adaptive;

use pir_dp::NoiseRng;
use pir_erm::DataPoint;
use pir_linalg::vector;

/// Covariate distribution families.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CovariateKind {
    /// Uniform on the sphere of the given radius (`≤ 1`).
    DenseSphere {
        /// Radius (≤ 1).
        radius: f64,
    },
    /// `k`-sparse supports with i.i.d. uniform entries, normalized into
    /// the unit ball.
    Sparse {
        /// Non-zeros per covariate.
        k: usize,
    },
    /// L1-ball-bounded covariates (each `‖x‖₁ ≤ radius ≤ 1`).
    L1Bounded {
        /// L1 radius (≤ 1).
        radius: f64,
    },
    /// *Anchored* covariates: coordinate 0 is uniform in
    /// `(−radius/√2, radius/√2)` and the remaining mass is a sphere
    /// sample — so a signal on coordinate 0 has **dimension-independent**
    /// strength `Var(y) ≈ θ₀²·radius²/6`. Shape experiments use this to
    /// keep the trivial mechanism's excess level constant across `d`.
    Anchored {
        /// Overall norm bound (≤ 1).
        radius: f64,
    },
    /// Anchored + sparse: coordinate 0 as in [`CovariateKind::Anchored`],
    /// plus `k − 1` random sparse coordinates. The vector is k-sparse, so
    /// it lies in the low-width domain of §5.2, with a
    /// dimension-independent signal on coordinate 0.
    AnchoredSparse {
        /// Total non-zeros per covariate (≥ 1).
        k: usize,
    },
}

impl CovariateKind {
    /// Draw one covariate in `R^d`.
    pub fn sample(&self, d: usize, rng: &mut NoiseRng) -> Vec<f64> {
        match *self {
            CovariateKind::DenseSphere { radius } => {
                assert!(radius > 0.0 && radius <= 1.0, "radius must lie in (0,1]");
                vector::scale(&rng.unit_sphere(d), radius)
            }
            CovariateKind::Sparse { k } => {
                assert!(k >= 1 && k <= d, "sparsity must lie in [1, d]");
                let mut x = vec![0.0; d];
                // Sample k distinct coordinates via a partial shuffle.
                let perm = rng.permutation(d);
                for &i in perm.iter().take(k) {
                    x[i] = rng.uniform_in(-1.0, 1.0);
                }
                let n = vector::norm2(&x);
                if n > 1.0 {
                    vector::scale_mut(&mut x, 0.98 / n);
                }
                x
            }
            CovariateKind::Anchored { radius } => {
                assert!(radius > 0.0 && radius <= 1.0, "radius must lie in (0,1]");
                let a = radius / std::f64::consts::SQRT_2;
                let x0 = rng.uniform_in(-a, a);
                let mut x = if d > 1 {
                    let tail = rng.unit_sphere(d - 1);
                    let mut v = vec![0.0; d];
                    let tail_scale =
                        (radius * radius - x0 * x0).max(0.0).sqrt() * rng.uniform_open().sqrt();
                    for (i, t) in tail.iter().enumerate() {
                        v[i + 1] = tail_scale * t;
                    }
                    v
                } else {
                    vec![0.0; 1]
                };
                x[0] = x0;
                x
            }
            CovariateKind::AnchoredSparse { k } => {
                assert!(k >= 1 && k <= d, "sparsity must lie in [1, d]");
                let mut x = vec![0.0; d];
                let a = 1.0 / std::f64::consts::SQRT_2;
                x[0] = rng.uniform_in(-a, a);
                if k > 1 && d > 1 {
                    let perm = rng.permutation(d - 1);
                    for &j in perm.iter().take(k - 1) {
                        x[j + 1] = rng.uniform_in(-0.5, 0.5);
                    }
                }
                let n = vector::norm2(&x);
                if n > 1.0 {
                    vector::scale_mut(&mut x, 0.98 / n);
                }
                x
            }
            CovariateKind::L1Bounded { radius } => {
                assert!(radius > 0.0 && radius <= 1.0, "radius must lie in (0,1]");
                // Dirichlet-like: exponential magnitudes normalized to the
                // L1 sphere, then shrunk by a uniform factor.
                let mut x: Vec<f64> = (0..d)
                    .map(|_| -rng.uniform_open().ln() * rng.uniform_in(-1.0, 1.0).signum())
                    .collect();
                let n1 = vector::norm1(&x);
                let shrink = radius * rng.uniform_open() / n1.max(1e-12);
                vector::scale_mut(&mut x, shrink);
                x
            }
        }
    }
}

/// A ground-truth linear model with label noise.
#[derive(Debug, Clone)]
pub struct LinearModel {
    /// The true parameter `θ*`.
    pub theta_star: Vec<f64>,
    /// Standard deviation of the Gaussian label noise `w`.
    pub noise_std: f64,
}

impl LinearModel {
    /// Label for a covariate: `clamp(⟨x, θ*⟩ + w, −1, 1)` (the clamp
    /// enforces the `|y| ≤ 1` contract; with `‖θ*‖·‖x‖ ≤ 1 − 3σ` it is
    /// almost never active).
    pub fn label(&self, x: &[f64], rng: &mut NoiseRng) -> f64 {
        let clean = vector::dot(x, &self.theta_star);
        (clean + rng.gaussian(0.0, self.noise_std)).clamp(-1.0, 1.0)
    }
}

/// A `k`-sparse ground-truth parameter with `‖θ*‖₂ = scale` (first `k`
/// support positions chosen by the RNG).
pub fn sparse_theta(d: usize, k: usize, scale: f64, rng: &mut NoiseRng) -> Vec<f64> {
    assert!(k >= 1 && k <= d);
    let mut theta = vec![0.0; d];
    let perm = rng.permutation(d);
    for &i in perm.iter().take(k) {
        theta[i] = rng.gaussian(0.0, 1.0);
    }
    let n = vector::norm2(&theta).max(1e-12);
    vector::scale_mut(&mut theta, scale / n);
    theta
}

/// Regression stream `y_t = ⟨x_t, θ*⟩ + w_t` of length `n`.
pub fn linear_stream(
    n: usize,
    d: usize,
    covariates: CovariateKind,
    model: &LinearModel,
    rng: &mut NoiseRng,
) -> Vec<DataPoint> {
    assert_eq!(model.theta_star.len(), d, "model dimension mismatch");
    (0..n)
        .map(|_| {
            let x = covariates.sample(d, rng);
            let y = model.label(&x, rng);
            DataPoint::new(x, y)
        })
        .collect()
}

/// Binary classification stream with logistic labels
/// `P(y = 1 | x) = σ(⟨x, θ*⟩/temperature)`.
pub fn classification_stream(
    n: usize,
    d: usize,
    covariates: CovariateKind,
    theta_star: &[f64],
    temperature: f64,
    rng: &mut NoiseRng,
) -> Vec<DataPoint> {
    assert_eq!(theta_star.len(), d);
    assert!(temperature > 0.0);
    (0..n)
        .map(|_| {
            let x = covariates.sample(d, rng);
            let p = 1.0 / (1.0 + (-vector::dot(&x, theta_star) / temperature).exp());
            let y = if rng.uniform_open() < p { 1.0 } else { -1.0 };
            DataPoint::new(x, y)
        })
        .collect()
}

/// Survey-monitoring stream (§1 motivation): the true parameter is
/// `theta_a` for the first `switch_at` points, then drifts linearly to
/// `theta_b` over the remainder — the regression summary must be
/// re-evaluated continually.
#[allow(clippy::too_many_arguments)]
pub fn drift_stream(
    n: usize,
    d: usize,
    covariates: CovariateKind,
    theta_a: &[f64],
    theta_b: &[f64],
    switch_at: usize,
    noise_std: f64,
    rng: &mut NoiseRng,
) -> Vec<DataPoint> {
    assert_eq!(theta_a.len(), d);
    assert_eq!(theta_b.len(), d);
    (0..n)
        .map(|t| {
            let frac = if t < switch_at || n == switch_at {
                0.0
            } else {
                (t - switch_at) as f64 / (n - switch_at) as f64
            };
            let theta: Vec<f64> =
                theta_a.iter().zip(theta_b).map(|(a, b)| a + frac * (b - a)).collect();
            let x = covariates.sample(d, rng);
            let y = (vector::dot(&x, &theta) + rng.gaussian(0.0, noise_std)).clamp(-1.0, 1.0);
            DataPoint::new(x, y)
        })
        .collect()
}

/// §5.2 robust-extension stream: with probability `p_off` the covariate
/// is dense (off the sparse domain `G`), otherwise `k`-sparse (in `G`).
/// Labels always follow the model so that in-domain points carry signal.
pub fn mixture_stream(
    n: usize,
    d: usize,
    k: usize,
    p_off: f64,
    model: &LinearModel,
    rng: &mut NoiseRng,
) -> Vec<DataPoint> {
    assert!((0.0..=1.0).contains(&p_off));
    (0..n)
        .map(|_| {
            let x = if rng.uniform_open() < p_off {
                CovariateKind::DenseSphere { radius: 0.95 }.sample(d, rng)
            } else {
                CovariateKind::Sparse { k }.sample(d, rng)
            };
            let y = model.label(&x, rng);
            DataPoint::new(x, y)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pir_erm::validate_dataset;

    fn rng() -> NoiseRng {
        NoiseRng::seed_from_u64(99)
    }

    #[test]
    fn all_generators_respect_the_normalization_contract() {
        let mut r = rng();
        let d = 12;
        let model = LinearModel { theta_star: sparse_theta(d, 3, 0.8, &mut r), noise_std: 0.05 };
        for kind in [
            CovariateKind::DenseSphere { radius: 0.9 },
            CovariateKind::Sparse { k: 3 },
            CovariateKind::L1Bounded { radius: 1.0 },
            CovariateKind::Anchored { radius: 0.95 },
            CovariateKind::AnchoredSparse { k: 3 },
        ] {
            let data = linear_stream(200, d, kind, &model, &mut r);
            validate_dataset(&data, d).expect("contract violated");
        }
        let cls = classification_stream(
            100,
            d,
            CovariateKind::Sparse { k: 2 },
            &model.theta_star,
            0.5,
            &mut r,
        );
        validate_dataset(&cls, d).unwrap();
        let drift = drift_stream(
            100,
            d,
            CovariateKind::DenseSphere { radius: 0.9 },
            &model.theta_star,
            &vec![0.0; d],
            50,
            0.05,
            &mut r,
        );
        validate_dataset(&drift, d).unwrap();
        let mix = mixture_stream(100, d, 3, 0.4, &model, &mut r);
        validate_dataset(&mix, d).unwrap();
    }

    #[test]
    fn sparse_covariates_have_at_most_k_nonzeros() {
        let mut r = rng();
        let kind = CovariateKind::Sparse { k: 4 };
        for _ in 0..50 {
            let x = kind.sample(20, &mut r);
            assert!(vector::nnz(&x) <= 4);
            assert!(vector::norm2(&x) <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn anchored_signal_strength_is_dimension_independent() {
        let mut r = rng();
        // Var(y) for y = 0.9·x₀ should match across dimensions.
        let var_at = |d: usize, r: &mut NoiseRng| {
            let kind = CovariateKind::Anchored { radius: 0.95 };
            let n = 4000;
            let mut s = 0.0;
            let mut s2 = 0.0;
            for _ in 0..n {
                let x = kind.sample(d, r);
                assert!(vector::norm2(&x) <= 0.95 + 1e-9);
                let y = 0.9 * x[0];
                s += y;
                s2 += y * y;
            }
            s2 / n as f64 - (s / n as f64).powi(2)
        };
        let v8 = var_at(8, &mut r);
        let v128 = var_at(128, &mut r);
        assert!((v8 / v128 - 1.0).abs() < 0.2, "v8={v8}, v128={v128}");
    }

    #[test]
    fn anchored_sparse_is_sparse_with_anchor() {
        let mut r = rng();
        let kind = CovariateKind::AnchoredSparse { k: 4 };
        for _ in 0..50 {
            let x = kind.sample(30, &mut r);
            assert!(vector::nnz(&x) <= 4);
            assert!(vector::norm2(&x) <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn sparse_theta_has_exact_norm_and_sparsity() {
        let mut r = rng();
        let theta = sparse_theta(30, 5, 0.7, &mut r);
        assert_eq!(vector::nnz(&theta), 5);
        assert!((vector::norm2(&theta) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn labels_track_the_model_signal() {
        let mut r = rng();
        let d = 8;
        let theta = sparse_theta(d, 2, 0.9, &mut r);
        let model = LinearModel { theta_star: theta.clone(), noise_std: 0.01 };
        let data =
            linear_stream(2000, d, CovariateKind::DenseSphere { radius: 0.9 }, &model, &mut r);
        // Empirical correlation of y with ⟨x, θ*⟩ should be near 1.
        let mut num = 0.0;
        let mut den_a = 0.0;
        let mut den_b = 0.0;
        for z in &data {
            let clean = vector::dot(&z.x, &theta);
            num += clean * z.y;
            den_a += clean * clean;
            den_b += z.y * z.y;
        }
        let corr = num / (den_a.sqrt() * den_b.sqrt());
        assert!(corr > 0.95, "correlation {corr}");
    }

    #[test]
    fn classification_labels_are_signed_and_correlated() {
        let mut r = rng();
        let d = 6;
        let theta = sparse_theta(d, 2, 1.0, &mut r);
        let data = classification_stream(
            3000,
            d,
            CovariateKind::DenseSphere { radius: 0.95 },
            &theta,
            0.1,
            &mut r,
        );
        let mut agree = 0usize;
        for z in &data {
            assert!(z.y == 1.0 || z.y == -1.0);
            if (vector::dot(&z.x, &theta) > 0.0) == (z.y > 0.0) {
                agree += 1;
            }
        }
        // Low temperature ⇒ labels mostly follow the sign of the margin.
        assert!(agree as f64 / data.len() as f64 > 0.8, "agreement {agree}");
    }

    #[test]
    fn mixture_off_fraction_is_respected() {
        let mut r = rng();
        let d = 20;
        let model = LinearModel { theta_star: sparse_theta(d, 2, 0.5, &mut r), noise_std: 0.0 };
        let data = mixture_stream(2000, d, 2, 0.3, &model, &mut r);
        let dense_count = data.iter().filter(|z| vector::nnz(&z.x) > 2).count();
        let frac = dense_count as f64 / data.len() as f64;
        assert!((frac - 0.3).abs() < 0.05, "off-domain fraction {frac}");
    }

    #[test]
    fn drift_changes_the_optimal_parameter() {
        let mut r = rng();
        let d = 4;
        let a = vec![0.8, 0.0, 0.0, 0.0];
        let b = vec![0.0, 0.8, 0.0, 0.0];
        let data = drift_stream(
            1000,
            d,
            CovariateKind::DenseSphere { radius: 0.9 },
            &a,
            &b,
            500,
            0.01,
            &mut r,
        );
        // First-half labels correlate with a, second-half with b.
        let corr = |slice: &[DataPoint], theta: &[f64]| {
            slice.iter().map(|z| z.y * vector::dot(&z.x, theta)).sum::<f64>()
        };
        assert!(corr(&data[..400], &a) > corr(&data[..400], &b));
        assert!(corr(&data[800..], &b) > corr(&data[800..], &a));
    }
}
