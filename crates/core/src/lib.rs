//! # pir-core
//!
//! The paper's private incremental mechanisms, end to end:
//!
//! - [`PrivIncErm`] — Mechanism 1 (§3): the generic transformation of any
//!   private *batch* ERM solver into a private *incremental* one, invoking
//!   the batch solver every `τ` steps with an advanced-composition budget.
//! - [`PrivIncReg1`] — Algorithm 2 (§4): private incremental linear
//!   regression from a continually-updated *private gradient function*
//!   (Definition 5) built on two Tree Mechanism instances, optimized per
//!   step with `NOISYPROJGRAD`. Excess risk `≈ √d·‖C‖²/ε` (Theorem 4.2).
//! - [`PrivIncReg2`] — Algorithm 3 (§5): the beyond-worst-case mechanism —
//!   Gaussian sketching (Gordon-sized), tree-mechanism statistics in the
//!   projected space, and Minkowski-gauge lifting back to `C`. Excess risk
//!   `≈ T^{1/3}W^{2/3}/ε + √OPT terms` (Theorem 5.7).
//! - [`RobustPrivIncReg2`] — the §5.2 extension for streams where only a
//!   subset of covariates comes from the low-width domain `G`.
//! - [`baselines`] — the naive per-step recomputation (√T composition
//!   penalty), the data-independent trivial mechanism, and the exact
//!   non-private incremental minimizer used as the Definition-1 oracle.
//! - [`evaluate`] — the `(α, β)`-estimator evaluation harness
//!   (Definition 1): worst-case-over-`t` excess empirical risk.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod baselines;
pub mod descent;
mod error;
pub mod evaluate;
pub mod generic;
pub mod gradient_fn;
pub mod lift;
pub mod mech1;
pub mod mech2;
pub mod robust;
pub mod state;
mod stream;

pub use baselines::{ExactIncremental, ExactIncrementalRestricted, TrivialMechanism};
pub use descent::DescentStrategy;
pub use error::CoreError;
pub use generic::{PrivIncErm, TauRule};
pub use gradient_fn::PrivateGradientFn;
pub use mech1::{PrivIncReg1, PrivIncReg1Config};
pub use mech2::{PrivIncReg2, PrivIncReg2Config};
pub use robust::RobustPrivIncReg2;
pub use stream::IncrementalMechanism;

/// Convenient result alias.
pub type Result<T> = std::result::Result<T, CoreError>;
