//! Algorithm 3 — `PRIVINCREG2`: beyond-worst-case private incremental
//! linear regression via Gaussian sketching and gauge lifting.
//!
//! Pipeline per timestep (paper Steps 4–10):
//! 1. rescale-and-project the covariate: `Φx̃` with `‖Φx̃‖ = ‖x‖ ≤ 1`
//!    (keeps the projected streams' sensitivity at 2);
//! 2. Tree Mechanism over `Φx̃·y ∈ R^m` and `(Φx̃)(Φx̃)ᵀ ∈ R^{m²}` at
//!    `(ε/2, δ/2)` each;
//! 3. private gradient function in the *projected* space and
//!    `NOISYPROJGRAD` over a Euclidean ball `B₂^m((1+γ)‖C‖) ⊇ ΦC`
//!    (implementation choice: exact Euclidean projection onto the image
//!    set `ΦC` has no closed form; by Gordon's theorem the ball is a
//!    `(1+γ)`-tight superset, and the subsequent lifting step restores
//!    feasibility in `C` — see DESIGN.md, decision 3);
//! 4. lift `ϑ_t ∈ R^m` back to `θ_t ∈ C ⊆ R^d` (Step 9) via
//!    [`crate::lift::lift_constrained_ls`].
//!
//! The sketch dimension `m` follows Gordon's rule with
//! `γ = W^{1/3}/T^{1/3}` and `W = w(X) + w(C)`, giving Theorem 5.7's
//! `≈ T^{1/3} W^{2/3}/ε` risk. Memory: `O(m² log T + d)`.

use crate::descent::{minimize_private_objective_into, DescentScratch, DescentStrategy};
use crate::error::CoreError;
use crate::lift::{lift_constrained_ls_into, sketch_smoothness, LiftScratch};
use crate::state;
use crate::stream::IncrementalMechanism;
use crate::Result;
use pir_continual::TreeMechanism;
use pir_dp::{NoiseRng, PrivacyParams};
use pir_erm::DataPoint;
use pir_geometry::{ConvexSet, L2Ball, WidthSet};
use pir_linalg::{vector, Matrix};
use pir_sketch::{gordon, GaussianSketch};

/// Tuning knobs for [`PrivIncReg2`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrivIncReg2Config {
    /// Confidence parameter `β`.
    pub beta: f64,
    /// Override the distortion `γ` (default: `W^{1/3}/T^{1/3}`).
    pub gamma: Option<f64>,
    /// Override the sketch dimension `m` (default: Gordon's rule).
    pub m_override: Option<usize>,
    /// Gordon constant `C` (DESIGN.md decision on constants; default 1).
    pub gordon_constant: f64,
    /// Cap on per-step `NOISYPROJGRAD` iterations.
    pub max_pgd_iters: usize,
    /// FISTA iterations for the lifting step.
    pub lift_iters: usize,
    /// Per-timestep minimization strategy (see [`DescentStrategy`]).
    pub strategy: DescentStrategy,
}

impl Default for PrivIncReg2Config {
    fn default() -> Self {
        PrivIncReg2Config {
            beta: 0.05,
            gamma: None,
            m_override: None,
            gordon_constant: 1.0,
            max_pgd_iters: 64,
            lift_iters: 200,
            strategy: DescentStrategy::default(),
        }
    }
}

/// The sketched private incremental regression mechanism
/// (Algorithm 3, Theorem 5.7).
///
/// # Examples
///
/// Sparse regression over the unit `ℓ₁` ball with a fixed sketch
/// dimension (use `m_override: None` to let Gordon's rule size it from
/// the combined Gaussian width):
///
/// ```
/// use pir_core::{IncrementalMechanism, PrivIncReg2, PrivIncReg2Config};
/// use pir_dp::{NoiseRng, PrivacyParams};
/// use pir_erm::DataPoint;
/// use pir_geometry::L1Ball;
///
/// let params = PrivacyParams::approx(1.0, 1e-6).unwrap();
/// let mut rng = NoiseRng::seed_from_u64(7);
/// let d = 50;
/// let mut mech = PrivIncReg2::new(
///     Box::new(L1Ball::unit(d)),
///     2.0, // bound on the covariate-domain Gaussian width w(X)
///     32,  // stream horizon T
///     &params,
///     &mut rng,
///     PrivIncReg2Config { m_override: Some(8), ..Default::default() },
/// )
/// .unwrap();
///
/// // One release per arrival; `observe_batch` amortizes whole runs.
/// let mut x = vec![0.0; d];
/// x[0] = 0.5;
/// let theta = mech.observe(&DataPoint::new(x, 0.35)).unwrap();
/// assert_eq!(theta.len(), d);
/// assert!(theta.iter().map(|v| v.abs()).sum::<f64>() <= 1.0 + 1e-6);
/// ```
#[derive(Debug)]
pub struct PrivIncReg2 {
    set: Box<dyn ConvexSet>,
    t_max: usize,
    config: PrivIncReg2Config,
    sketch: GaussianSketch,
    /// `B₂^m((1+γ)‖C‖) ⊇ ΦC` — the search region in the projected space.
    proj_ball: L2Ball,
    gamma: f64,
    combined_width: f64,
    lift_smoothness: f64,
    tree_xy: TreeMechanism,
    tree_xx: TreeMechanism,
    /// Last projected-space iterate (warm start for the per-step PGD).
    last_vartheta: Vec<f64>,
    /// Last lifted release (warm start for the lift FISTA).
    last_theta: Vec<f64>,
    scratch: Reg2Scratch,
    t: usize,
}

/// Mechanism-owned step buffers, preallocated at construction and reused
/// every timestep — the `m²` `Matrix::from_vec` copy per step is gone,
/// mirroring `PrivIncReg1`'s scratch. Covers both the projected-space
/// pipeline (`R^m`) and the gauge lift back to `C ⊂ R^d`, so a whole
/// [`PrivIncReg2::observe_into`] step is allocation-free.
#[derive(Debug, Clone)]
struct Reg2Scratch {
    /// Norm-preserving embedding `Φx̃`.
    embedded: Vec<f64>,
    /// `Φx̃·y` — the projected first-moment stream item.
    pxy: Vec<f64>,
    /// `(Φx̃)(Φx̃)ᵀ` — the projected second-moment stream item.
    outer: Matrix,
    /// Second-moment tree release `Q_t ∈ R^{m×m}` (symmetrized in place).
    q_mat: Matrix,
    /// Per-step minimizer `ϑ_t` in the projected space.
    vartheta: Vec<f64>,
    /// Ridged-surrogate and iteration buffers for the projected descent.
    descent: DescentScratch,
    /// Residual and FISTA buffers for the gauge lift (Step 9).
    lift: LiftScratch,
}

impl Reg2Scratch {
    fn new(m: usize, d: usize) -> Self {
        Reg2Scratch {
            embedded: vec![0.0; m],
            pxy: vec![0.0; m],
            outer: Matrix::zeros(m, m),
            q_mat: Matrix::zeros(m, m),
            vartheta: vec![0.0; m],
            descent: DescentScratch::new(m),
            lift: LiftScratch::new(m, d),
        }
    }
}

impl PrivIncReg2 {
    /// Build the mechanism.
    ///
    /// `domain_width` is (a bound on) the Gaussian width `w(X)` of the
    /// covariate domain — analytic bounds are on the
    /// [`WidthSet`] implementations (e.g.
    /// [`pir_geometry::KSparseDomain::width_bound`]), or use the
    /// Monte-Carlo estimate from [`pir_geometry::width::monte_carlo`].
    ///
    /// # Errors
    /// Invalid configuration or privacy parameters.
    pub fn new(
        set: Box<dyn ConvexSet>,
        domain_width: f64,
        t_max: usize,
        params: &PrivacyParams,
        rng: &mut NoiseRng,
        config: PrivIncReg2Config,
    ) -> Result<Self> {
        if t_max == 0 {
            return Err(CoreError::InvalidConfig { reason: "t_max must be positive".into() });
        }
        if !(domain_width.is_finite() && domain_width >= 0.0) {
            return Err(CoreError::InvalidConfig {
                reason: format!("domain width must be finite and non-negative, got {domain_width}"),
            });
        }
        let d = set.dim();
        let combined_width = domain_width + set.width_bound();
        let gamma = match config.gamma {
            Some(g) if g > 0.0 && g < 1.0 => g,
            Some(g) => {
                return Err(CoreError::InvalidConfig {
                    reason: format!("gamma must lie in (0,1), got {g}"),
                })
            }
            None => gordon::gamma_for(combined_width, t_max),
        };
        let m = match config.m_override {
            Some(m) if m >= 1 && m <= d => m,
            Some(m) => {
                return Err(CoreError::InvalidConfig {
                    reason: format!("m override {m} outside [1, d={d}]"),
                })
            }
            None => {
                let gp = gordon::GordonParams::new(gamma, config.beta)
                    .with_constant(config.gordon_constant);
                gordon::dimension(combined_width, d, &gp)
            }
        };
        let sketch = GaussianSketch::sample(m, d, rng);
        let lift_smoothness = sketch_smoothness(&sketch);
        let proj_ball = L2Ball::new(m, (1.0 + gamma) * set.diameter());
        let half = params.halve();
        // ‖Φx̃·y‖ = ‖x‖·|y| ≤ 1 and ‖(Φx̃)(Φx̃)ᵀ‖_F = ‖x‖² ≤ 1.
        let tree_xy = TreeMechanism::new(m, t_max, 1.0, &half, rng.fork())?;
        let tree_xx = TreeMechanism::new(m * m, t_max, 1.0, &half, rng.fork())?;
        let last_theta = set.project(&vec![0.0; d]);
        Ok(PrivIncReg2 {
            set,
            t_max,
            config,
            sketch,
            proj_ball,
            gamma,
            combined_width,
            lift_smoothness,
            tree_xy,
            tree_xx,
            last_vartheta: vec![0.0; m],
            last_theta,
            scratch: Reg2Scratch::new(m, d),
            t: 0,
        })
    }

    /// The sampled sketch dimension `m`.
    pub fn m(&self) -> usize {
        self.sketch.m()
    }

    /// The distortion parameter `γ` in use.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// The combined width `W = w(X) + w(C)` the mechanism was sized for.
    pub fn combined_width(&self) -> f64 {
        self.combined_width
    }

    /// The constraint set.
    pub fn set(&self) -> &dyn ConvexSet {
        self.set.as_ref()
    }

    /// The sketch (immutable — fixed for the stream's lifetime).
    pub fn sketch(&self) -> &GaussianSketch {
        &self.sketch
    }

    /// Resident memory in `f64` slots: `O(m² log T + m·d)` (the `m·d`
    /// term is the sketch itself).
    pub fn memory_slots(&self) -> usize {
        self.tree_xx.memory_slots()
            + self.tree_xy.memory_slots()
            + self.sketch.m() * self.sketch.d()
    }

    /// Projected-space gradient-error bound (Lemma 4.1 applied in `R^m`,
    /// with the Proposition A.1 spectral sharpening).
    fn gradient_alpha(&self) -> f64 {
        let beta_each = self.config.beta / (2.0 * self.t_max as f64);
        let m = self.sketch.m() as f64;
        let levels = self.tree_xx.levels() as f64;
        let me = self.tree_xx.sigma()
            * levels.sqrt()
            * (2.0 * m.sqrt() + (2.0 * (1.0 / beta_each).ln()).sqrt());
        let ve = self.tree_xy.error_bound(beta_each);
        2.0 * (me * self.proj_ball.diameter() + ve)
    }

    /// Theorem 5.7 leading-term bound
    /// `≈ √m·log^{3/2}T·√log(1/δ)·‖C‖²/ε` folded through Corollary B.2
    /// (the `OPT`-dependent terms are data-dependent and reported by the
    /// evaluation harness instead).
    pub fn risk_bound_leading(&self) -> f64 {
        2.0 * self.gradient_alpha() * self.proj_ball.diameter()
    }

    /// The `t`-independent ingredients of the projected-space error bound
    /// — `(me, α)`, functions of the tree geometry (σ, levels, m) only,
    /// so the batch paths compute them once per batch.
    fn error_ingredients(&self) -> (f64, f64) {
        let beta_each = self.config.beta / (2.0 * self.t_max as f64);
        let levels = self.tree_xx.levels() as f64;
        let me = self.tree_xx.sigma()
            * levels.sqrt()
            * (2.0 * (self.sketch.m() as f64).sqrt() + (2.0 * (1.0 / beta_each).ln()).sqrt());
        let ve = self.tree_xy.error_bound(beta_each);
        let alpha = (2.0 * (me * self.proj_ball.diameter() + ve)).max(1e-12);
        (me, alpha)
    }

    /// Contract sweep + overflow check for a batch, before anything is
    /// consumed (the atomic-rejection contract of `observe_batch`).
    fn check_batch(&self, batch: &[DataPoint]) -> Result<()> {
        let d = self.set.dim();
        for (i, z) in batch.iter().enumerate() {
            z.validate(d)
                .map_err(|e| CoreError::InvalidPoint { reason: format!("batch index {i}: {e}") })?;
        }
        if self.t + batch.len() > self.t_max {
            return Err(CoreError::StreamOverflow { t_max: self.t_max });
        }
        Ok(())
    }

    /// Consume one already-validated point (Steps 4–9 of Algorithm 3) and
    /// write the lifted release into `out` — the allocation-free per-point
    /// body shared by the step and batch paths. The projected first-moment
    /// release is *borrowed* from its tree via
    /// [`TreeMechanism::update_ref`] (read where the tree maintains it
    /// instead of copied out); the second-moment release still lands in
    /// scratch because it must be symmetrized.
    fn consume_into(&mut self, z: &DataPoint, me: f64, alpha: f64, out: &mut [f64]) -> Result<()> {
        self.t += 1;

        // Step 4: norm-preserving embedding (zero covariates contribute
        // zero statistics, matching the robust-extension convention; the
        // degenerate case leaves the scratch zero-filled).
        self.sketch
            .embed_normalized_into(&z.x, &mut self.scratch.embedded)
            .map_err(CoreError::Linalg)?;

        // Steps 5–6: tree updates in the projected space (trusted internal
        // data — validated on ingest).
        vector::scaled_copy_into(z.y, &self.scratch.embedded, &mut self.scratch.pxy);
        let q_t = self.tree_xy.update_ref(&self.scratch.pxy)?;
        self.scratch
            .outer
            .set_outer(&self.scratch.embedded, &self.scratch.embedded)
            .map_err(CoreError::Linalg)?;
        self.tree_xx
            .update_into(self.scratch.outer.as_slice(), self.scratch.q_mat.as_mut_slice())?;

        // Step 7: private gradient function over ΦC (here: its ball hull),
        // as borrowed views of the symmetrized release and the tree's
        // first-moment accumulator.
        self.scratch.q_mat.symmetrize_mut();

        // Step 8: constrained minimization in the projected space (the
        // paper's NOISYPROJGRAD or the default ridged-quadratic FISTA —
        // both post-processing; see crate::descent).
        let lipschitz = 2.0 * self.t as f64 * (1.0 + self.proj_ball.diameter());
        minimize_private_objective_into(
            self.config.strategy,
            &self.scratch.q_mat,
            q_t,
            &self.proj_ball,
            me,
            alpha,
            lipschitz,
            self.config.max_pgd_iters,
            &self.last_vartheta,
            &mut self.scratch.descent,
            &mut self.scratch.vartheta,
        );
        self.last_vartheta.copy_from_slice(&self.scratch.vartheta);

        // Step 9: lift back to C, written straight into the release
        // buffer (dimensions are fixed at construction, so the panicking
        // preconditions of the _into lift cannot trigger here).
        lift_constrained_ls_into(
            &self.sketch,
            &self.scratch.vartheta,
            self.set.as_ref(),
            self.lift_smoothness,
            self.config.lift_iters,
            &self.last_theta,
            &mut self.scratch.lift,
            out,
        );
        self.last_theta.copy_from_slice(out);
        Ok(())
    }

    /// One Algorithm-3 step, written into `out` — the primitive behind
    /// both `observe` and `observe_into`. The whole step — embedding,
    /// tree updates, descent, and the gauge lift back to `C` — runs
    /// allocation-free on mechanism-owned scratch
    /// (`tests/alloc_steady_state.rs` enforces this with a counting
    /// global allocator).
    fn step_into(&mut self, z: &DataPoint, out: &mut [f64]) -> Result<()> {
        let d = self.set.dim();
        if out.len() != d {
            return Err(CoreError::InvalidConfig {
                reason: format!("release buffer length {} != dimension {d}", out.len()),
            });
        }
        z.validate(d).map_err(|e| CoreError::InvalidPoint { reason: e.to_string() })?;
        if self.t >= self.t_max {
            return Err(CoreError::StreamOverflow { t_max: self.t_max });
        }
        let (me, alpha) = self.error_ingredients();
        self.consume_into(z, me, alpha, out)
    }
}

impl IncrementalMechanism for PrivIncReg2 {
    fn name(&self) -> String {
        format!("priv-inc-reg-2 (sketched, m={})", self.sketch.m())
    }

    fn dim(&self) -> usize {
        self.set.dim()
    }

    fn t(&self) -> usize {
        self.t
    }

    fn observe(&mut self, z: &DataPoint) -> Result<Vec<f64>> {
        let mut out = vec![0.0; self.set.dim()];
        self.step_into(z, &mut out)?;
        Ok(out)
    }

    fn observe_into(&mut self, z: &DataPoint, out: &mut [f64]) -> Result<()> {
        self.step_into(z, out)
    }

    /// Amortized batch path — release-for-release identical to the
    /// sequential loop (each point runs the same per-point body, against
    /// the same tree states and the deterministic sketch, in the same
    /// order):
    ///
    /// 1. one contract sweep + overflow check over the batch (atomic
    ///    rejection);
    /// 2. the `t`-independent error bounds hoisted out of the loop;
    /// 3. embedding, both trees, descent, and the gauge lift driven per
    ///    point on the mechanism's own step scratch, the projected
    ///    first-moment release borrowed from its tree — the only per-point
    ///    allocation is the returned estimator (the flat-buffer
    ///    [`observe_batch_into`](IncrementalMechanism::observe_batch_into)
    ///    form performs none at all).
    fn observe_batch(&mut self, batch: &[DataPoint]) -> Result<Vec<Vec<f64>>> {
        if batch.is_empty() {
            return Ok(Vec::new());
        }
        self.check_batch(batch)?;
        let (me, alpha) = self.error_ingredients();
        let d = self.set.dim();
        let mut out = Vec::with_capacity(batch.len());
        for z in batch {
            let mut theta = vec![0.0; d];
            self.consume_into(z, me, alpha, &mut theta)?;
            out.push(theta);
        }
        Ok(out)
    }

    /// The zero-allocation batch primitive: identical consumption order
    /// and releases as [`observe_batch`](IncrementalMechanism::observe_batch),
    /// written into the caller's flat buffer. Steady state touches the
    /// heap zero times for any batch size.
    fn observe_batch_into(&mut self, batch: &[DataPoint], out: &mut [f64]) -> Result<()> {
        let d = self.set.dim();
        if out.len() != batch.len() * d {
            return Err(CoreError::InvalidConfig {
                reason: format!(
                    "batch release buffer length {} != {} points x dimension {d}",
                    out.len(),
                    batch.len()
                ),
            });
        }
        if batch.is_empty() {
            return Ok(());
        }
        self.check_batch(batch)?;
        let (me, alpha) = self.error_ingredients();
        for (z, chunk) in batch.iter().zip(out.chunks_exact_mut(d)) {
            self.consume_into(z, me, alpha, chunk)?;
        }
        Ok(())
    }

    fn supports_state(&self) -> bool {
        true
    }

    /// Dynamic state: step counter, the two warm-start iterates (projected
    /// `ϑ` and lifted `θ`), and the two projected-space tree states
    /// (`O(m² log T + d)` bytes). The sketch matrix `Φ` is *not* here — it
    /// is static, resampled bit-identically when the mechanism is respawned
    /// from its spec and seed.
    fn save_state(&self, out: &mut Vec<u8>) -> Result<()> {
        state::put_u8(out, state::TAG_REG2);
        state::put_u64(out, self.t as u64);
        state::put_f64_slice(out, &self.last_vartheta);
        state::put_f64_slice(out, &self.last_theta);
        state::put_tree(out, &self.tree_xy.export_state());
        state::put_tree(out, &self.tree_xx.export_state());
        Ok(())
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<()> {
        let mut r = state::StateReader::new(bytes);
        r.expect_tag(state::TAG_REG2, "priv-inc-reg-2")?;
        let t = r.take_u64("step counter")? as usize;
        let last_vartheta = r.take_f64_vec("projected warm-start iterate")?;
        let last_theta = r.take_f64_vec("lifted warm-start iterate")?;
        let xy = r.take_tree("first-moment tree")?;
        let xx = r.take_tree("second-moment tree")?;
        r.finish()?;
        if t > self.t_max {
            return Err(CoreError::InvalidState {
                reason: format!("t = {t} exceeds horizon T = {}", self.t_max),
            });
        }
        if xy.t != t || xx.t != t {
            return Err(CoreError::InvalidState {
                reason: format!(
                    "tree step counters ({}, {}) disagree with mechanism t = {t}",
                    xy.t, xx.t
                ),
            });
        }
        if last_vartheta.len() != self.sketch.m() {
            return Err(CoreError::InvalidState {
                reason: format!(
                    "projected iterate has dimension {} (expected m = {})",
                    last_vartheta.len(),
                    self.sketch.m()
                ),
            });
        }
        if last_theta.len() != self.set.dim() {
            return Err(CoreError::InvalidState {
                reason: format!(
                    "lifted iterate has dimension {} (expected {})",
                    last_theta.len(),
                    self.set.dim()
                ),
            });
        }
        if !vector::is_finite(&last_vartheta) || !vector::is_finite(&last_theta) {
            return Err(CoreError::InvalidState {
                reason: "warm-start iterate contains NaN/infinite entries".to_string(),
            });
        }
        self.tree_xy.restore_state(&xy)?;
        self.tree_xx.restore_state(&xx)?;
        self.t = t;
        self.last_vartheta.copy_from_slice(&last_vartheta);
        self.last_theta.copy_from_slice(&last_theta);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pir_geometry::{KSparseDomain, L1Ball};

    fn params() -> PrivacyParams {
        PrivacyParams::approx(1.0, 1e-5).unwrap()
    }

    /// Sparse-signal Lasso stream: y = θ*ᵀx with 1-sparse θ*.
    fn sparse_stream(n: usize, d: usize, k: usize, seed: u64) -> Vec<DataPoint> {
        let mut rng = NoiseRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                // k-sparse covariate with unit-bounded norm.
                let mut x = vec![0.0; d];
                for _ in 0..k {
                    let i = rng.uniform_index(d);
                    x[i] = rng.uniform_in(-1.0, 1.0);
                }
                let norm = vector::norm2(&x);
                if norm > 1.0 {
                    vector::scale_mut(&mut x, 0.95 / norm);
                }
                let y = (0.7 * x[0]).clamp(-1.0, 1.0);
                DataPoint::new(x, y)
            })
            .collect()
    }

    #[test]
    fn save_load_state_is_bit_identical() {
        let d = 20;
        let spawn = || {
            let mut rng = NoiseRng::seed_from_u64(41);
            PrivIncReg2::new(
                Box::new(L1Ball::unit(d)),
                2.0,
                16,
                &params(),
                &mut rng,
                PrivIncReg2Config { m_override: Some(6), ..Default::default() },
            )
            .unwrap()
        };
        let mut live = spawn();
        let points = sparse_stream(16, d, 3, 88);
        for z in &points[..7] {
            live.observe(z).unwrap();
        }
        let mut blob = Vec::new();
        live.save_state(&mut blob).unwrap();
        let mut restored = spawn();
        restored.load_state(&blob).unwrap();
        assert_eq!(restored.t(), 7);
        for z in &points[7..] {
            assert_eq!(live.observe(z).unwrap(), restored.observe(z).unwrap());
        }
    }

    #[test]
    fn load_state_rejects_mismatched_configuration() {
        // A blob captured at m = 6 must not load into an m = 8 instance.
        let d = 20;
        let spawn = |m| {
            let mut rng = NoiseRng::seed_from_u64(42);
            PrivIncReg2::new(
                Box::new(L1Ball::unit(d)),
                2.0,
                16,
                &params(),
                &mut rng,
                PrivIncReg2Config { m_override: Some(m), ..Default::default() },
            )
            .unwrap()
        };
        let mut src = spawn(6);
        for z in sparse_stream(3, d, 3, 89) {
            src.observe(&z).unwrap();
        }
        let mut blob = Vec::new();
        src.save_state(&mut blob).unwrap();
        let err = spawn(8).load_state(&blob);
        assert!(
            matches!(err, Err(CoreError::InvalidState { .. }) | Err(CoreError::Continual(_))),
            "{err:?}"
        );
    }

    #[test]
    fn sketch_dimension_follows_gordon_rule() {
        let mut rng = NoiseRng::seed_from_u64(1);
        let d = 400;
        let set = L1Ball::unit(d);
        let domain = KSparseDomain::new(d, 4, 1.0);
        // With the conservative default constant C = 1 the Gordon rule
        // only compresses at large T/d; a realistic constant (swept in
        // experiment E9) compresses already at this scale.
        let mech = PrivIncReg2::new(
            Box::new(set),
            domain.width_bound(),
            256,
            &params(),
            &mut rng,
            PrivIncReg2Config { gordon_constant: 0.1, ..Default::default() },
        )
        .unwrap();
        assert!(mech.m() < d, "projection should compress: m={}", mech.m());
        assert!(mech.m() >= 1);
        assert!(mech.gamma() > 0.0 && mech.gamma() < 1.0);
        // m follows the (W/γ)² scaling: quadrupling the constant roughly
        // quadruples m (before clamping).
        let mut rng2 = NoiseRng::seed_from_u64(1);
        let mech4 = PrivIncReg2::new(
            Box::new(L1Ball::unit(d)),
            KSparseDomain::new(d, 4, 1.0).width_bound(),
            256,
            &params(),
            &mut rng2,
            PrivIncReg2Config { gordon_constant: 0.2, ..Default::default() },
        )
        .unwrap();
        let ratio = mech4.m() as f64 / mech.m() as f64;
        assert!((ratio - 2.0).abs() < 0.2, "ratio {ratio}");
    }

    #[test]
    fn releases_stay_in_constraint_set() {
        let mut rng = NoiseRng::seed_from_u64(2);
        let d = 50;
        let set = L1Ball::unit(d);
        let mut mech = PrivIncReg2::new(
            Box::new(set),
            KSparseDomain::new(d, 3, 1.0).width_bound(),
            16,
            &params(),
            &mut rng,
            PrivIncReg2Config { m_override: Some(10), ..Default::default() },
        )
        .unwrap();
        for z in sparse_stream(16, d, 3, 7) {
            let theta = mech.observe(&z).unwrap();
            assert!(vector::norm1(&theta) <= 1.0 + 1e-6, "L1 norm violated");
        }
    }

    #[test]
    fn zero_covariates_are_tolerated() {
        let mut rng = NoiseRng::seed_from_u64(3);
        let d = 20;
        let mut mech = PrivIncReg2::new(
            Box::new(L1Ball::unit(d)),
            2.0,
            4,
            &params(),
            &mut rng,
            PrivIncReg2Config { m_override: Some(5), ..Default::default() },
        )
        .unwrap();
        let theta = mech.observe(&DataPoint::new(vec![0.0; d], 0.5)).unwrap();
        assert_eq!(theta.len(), d);
    }

    #[test]
    fn config_validation() {
        let mut rng = NoiseRng::seed_from_u64(4);
        let bad_gamma = PrivIncReg2Config { gamma: Some(1.5), ..Default::default() };
        assert!(PrivIncReg2::new(
            Box::new(L1Ball::unit(10)),
            1.0,
            8,
            &params(),
            &mut rng,
            bad_gamma
        )
        .is_err());
        let bad_m = PrivIncReg2Config { m_override: Some(100), ..Default::default() };
        assert!(PrivIncReg2::new(Box::new(L1Ball::unit(10)), 1.0, 8, &params(), &mut rng, bad_m)
            .is_err());
        assert!(PrivIncReg2::new(
            Box::new(L1Ball::unit(10)),
            f64::NAN,
            8,
            &params(),
            &mut rng,
            PrivIncReg2Config::default()
        )
        .is_err());
    }

    #[test]
    fn tracks_sparse_signal_at_generous_epsilon() {
        let loose = PrivacyParams::approx(1e6, 1e-5).unwrap();
        let mut rng = NoiseRng::seed_from_u64(5);
        let d = 60;
        let mut mech = PrivIncReg2::new(
            Box::new(L1Ball::unit(d)),
            KSparseDomain::new(d, 2, 1.0).width_bound(),
            128,
            &loose,
            &mut rng,
            PrivIncReg2Config {
                m_override: Some(40),
                max_pgd_iters: 200,
                lift_iters: 400,
                ..Default::default()
            },
        )
        .unwrap();
        let mut last = vec![0.0; d];
        for z in sparse_stream(128, d, 2, 9) {
            last = mech.observe(&z).unwrap();
        }
        // Signal is 0.7·e₀; the sketched mechanism should find most of it.
        assert!(last[0] > 0.3, "recovered coefficient too small: {}", last[0]);
        let off_mass: f64 = last[1..].iter().map(|v| v.abs()).sum();
        assert!(off_mass < 0.7, "off-support mass {off_mass}");
    }

    #[test]
    fn memory_is_m_squared_not_d_squared() {
        let mut rng = NoiseRng::seed_from_u64(6);
        let d = 500;
        let mech = PrivIncReg2::new(
            Box::new(L1Ball::unit(d)),
            3.0,
            64,
            &params(),
            &mut rng,
            PrivIncReg2Config { m_override: Some(20), ..Default::default() },
        )
        .unwrap();
        // d² alone would be 250 000 slots per tree level; we should be
        // far below even one such level (m²·levels + m·d).
        assert!(mech.memory_slots() < d * d / 2, "memory {}", mech.memory_slots());
    }
}
