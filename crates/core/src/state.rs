//! Compact deterministic byte codec for mechanism dynamic state.
//!
//! A mechanism's *dynamic* state — step counter, tree partial sums,
//! warm-start iterates, noise-generator words — is what a session
//! snapshot must carry; everything static (constraint set, horizon,
//! privacy calibration, sketch matrix) is reproduced by re-running the
//! constructor with the same seed. This module is the shared encoding
//! those blobs use: little-endian `u64` scalars, `f64` as IEEE-754 bit
//! patterns (so round-trips are bit-exact, NaN payloads included),
//! length-prefixed vectors, and a strict reader that rejects truncation,
//! oversized length fields, and trailing bytes with typed
//! [`CoreError::InvalidState`] errors.
//!
//! The blob starts with a one-byte mechanism tag so a state captured
//! from one mechanism family can never be absorbed by another: the
//! engine's snapshot layer respawns a mechanism from its spec and then
//! feeds it the blob, and the tag check is the last line of defense if
//! the two ever disagree.

use crate::error::CoreError;
use crate::Result;
use pir_continual::TreeState;

/// Blob tag for [`crate::PrivIncReg1`] state.
pub const TAG_REG1: u8 = 1;
/// Blob tag for [`crate::PrivIncReg2`] state.
pub const TAG_REG2: u8 = 2;
/// Blob tag for [`crate::TrivialMechanism`] state.
pub const TAG_TRIVIAL: u8 = 3;
/// Blob tag for [`crate::ExactIncremental`] state.
pub const TAG_EXACT: u8 = 4;

/// Append a raw byte.
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Append a little-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append one `f64` as its IEEE-754 bit pattern (little-endian).
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// Append a length-prefixed `f64` slice (`u64` count, then the raw bit
/// patterns).
pub fn put_f64_slice(out: &mut Vec<u8>, v: &[f64]) {
    put_u64(out, v.len() as u64);
    for &x in v {
        put_f64(out, x);
    }
}

/// Append a captured [`TreeState`]: step counter, the four generator
/// words, the level count, then the `a` rows, `b` rows, and maintained
/// release as length-prefixed slices.
pub fn put_tree(out: &mut Vec<u8>, tree: &TreeState) {
    put_u64(out, tree.t as u64);
    for w in tree.rng {
        put_u64(out, w);
    }
    put_u64(out, tree.a.len() as u64);
    for row in &tree.a {
        put_f64_slice(out, row);
    }
    put_u64(out, tree.b.len() as u64);
    for row in &tree.b {
        put_f64_slice(out, row);
    }
    put_f64_slice(out, &tree.s);
}

fn invalid(reason: impl Into<String>) -> CoreError {
    CoreError::InvalidState { reason: reason.into() }
}

/// Strict cursor over a state blob. Every read is bounds-checked, length
/// fields are validated against the bytes actually remaining (so a forged
/// count can never trigger an oversized allocation), and
/// [`finish`](StateReader::finish) rejects trailing bytes — a blob either
/// parses completely or yields a typed error.
#[derive(Debug)]
pub struct StateReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> StateReader<'a> {
    /// Reader over the whole blob.
    pub fn new(buf: &'a [u8]) -> Self {
        StateReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        let end = self.pos.checked_add(n).ok_or_else(|| invalid("length overflow"))?;
        if end > self.buf.len() {
            return Err(invalid(format!(
                "truncated while reading {what}: need {n} byte(s) at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            )));
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Read one byte.
    pub fn take_u8(&mut self, what: &str) -> Result<u8> {
        Ok(self.take(1, what)?[0])
    }

    /// Read a little-endian `u64`.
    pub fn take_u64(&mut self, what: &str) -> Result<u64> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes(b.try_into().expect("slice is 8 bytes")))
    }

    /// Read a `u64` that must fit a `usize` count of 8-byte items still
    /// present in the buffer (the anti-forgery bound for vector lengths).
    fn take_count(&mut self, what: &str) -> Result<usize> {
        let n = self.take_u64(what)?;
        let remaining = (self.buf.len() - self.pos) as u64;
        if n > remaining / 8 {
            return Err(invalid(format!(
                "{what} count {n} exceeds the {remaining} byte(s) remaining"
            )));
        }
        Ok(n as usize)
    }

    /// Read one `f64` bit pattern.
    pub fn take_f64(&mut self, what: &str) -> Result<f64> {
        let b = self.take(8, what)?;
        Ok(f64::from_bits(u64::from_le_bytes(b.try_into().expect("slice is 8 bytes"))))
    }

    /// Read a length-prefixed `f64` vector.
    pub fn take_f64_vec(&mut self, what: &str) -> Result<Vec<f64>> {
        let n = self.take_count(what)?;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.take_f64(what)?);
        }
        Ok(v)
    }

    /// Read a [`TreeState`] written by [`put_tree`]. Shape agreement with
    /// a concrete mechanism is *not* checked here — that is
    /// [`pir_continual::TreeMechanism::restore_state`]'s job.
    pub fn take_tree(&mut self, what: &str) -> Result<TreeState> {
        let t = self.take_u64(what)? as usize;
        let mut rng = [0u64; 4];
        for w in rng.iter_mut() {
            *w = self.take_u64(what)?;
        }
        let a_levels = self.take_count(what)?;
        let mut a = Vec::with_capacity(a_levels);
        for _ in 0..a_levels {
            a.push(self.take_f64_vec(what)?);
        }
        let b_levels = self.take_count(what)?;
        let mut b = Vec::with_capacity(b_levels);
        for _ in 0..b_levels {
            b.push(self.take_f64_vec(what)?);
        }
        let s = self.take_f64_vec(what)?;
        Ok(TreeState { t, a, b, s, rng })
    }

    /// Read and check the leading mechanism tag.
    pub fn expect_tag(&mut self, tag: u8, mechanism: &str) -> Result<()> {
        let found = self.take_u8("mechanism tag")?;
        if found != tag {
            return Err(invalid(format!("state blob tag {found} is not {mechanism}'s tag {tag}")));
        }
        Ok(())
    }

    /// Require the blob to be fully consumed.
    pub fn finish(self) -> Result<()> {
        if self.pos != self.buf.len() {
            return Err(invalid(format!(
                "{} trailing byte(s) after a complete state",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip_is_bit_exact() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 7);
        put_u64(&mut buf, u64::MAX - 3);
        put_f64(&mut buf, -0.0);
        put_f64(&mut buf, f64::from_bits(0x7FF8_0000_0000_1234)); // NaN payload
        put_f64_slice(&mut buf, &[1.5, f64::MIN_POSITIVE]);
        let mut r = StateReader::new(&buf);
        assert_eq!(r.take_u8("t").unwrap(), 7);
        assert_eq!(r.take_u64("t").unwrap(), u64::MAX - 3);
        assert_eq!(r.take_f64("t").unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.take_f64("t").unwrap().to_bits(), 0x7FF8_0000_0000_1234);
        assert_eq!(r.take_f64_vec("t").unwrap(), vec![1.5, f64::MIN_POSITIVE]);
        r.finish().unwrap();
    }

    #[test]
    fn truncation_and_trailing_bytes_are_typed_errors() {
        let mut buf = Vec::new();
        put_u64(&mut buf, 42);
        // Truncation at every prefix.
        for cut in 0..buf.len() {
            let mut r = StateReader::new(&buf[..cut]);
            assert!(matches!(r.take_u64("x"), Err(CoreError::InvalidState { .. })));
        }
        // Trailing garbage.
        buf.push(0);
        let mut r = StateReader::new(&buf);
        r.take_u64("x").unwrap();
        assert!(matches!(r.finish(), Err(CoreError::InvalidState { .. })));
    }

    #[test]
    fn forged_length_cannot_oversize_allocation() {
        let mut buf = Vec::new();
        put_u64(&mut buf, u64::MAX); // claimed element count
        let mut r = StateReader::new(&buf);
        assert!(matches!(r.take_f64_vec("v"), Err(CoreError::InvalidState { .. })));
    }

    #[test]
    fn tree_state_roundtrip() {
        let tree = TreeState {
            t: 13,
            a: vec![vec![1.0, 2.0], vec![3.0, 4.0]],
            b: vec![vec![-1.0, 0.5], vec![0.0, 9.0]],
            s: vec![2.0, 13.5],
            rng: [1, 2, 3, u64::MAX],
        };
        let mut buf = Vec::new();
        put_tree(&mut buf, &tree);
        let mut r = StateReader::new(&buf);
        assert_eq!(r.take_tree("tree").unwrap(), tree);
        r.finish().unwrap();
    }
}
