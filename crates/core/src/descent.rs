//! Per-timestep descent strategies over the private gradient function.
//!
//! Both are pure post-processing of the released statistics `(Q_t, q_t)`
//! and therefore free of privacy cost (Definition 5):
//!
//! - [`DescentStrategy::RidgedQuadraticFista`] (default). The private
//!   gradient function is the exact gradient field of the *released
//!   quadratic* `J̃(θ) = θᵀQ_tθ − 2⟨q_t, θ⟩`. We minimize the ridge-
//!   stabilized surrogate `J̃_λ(θ) = J̃(θ) + λ‖θ‖²` with `λ` set to the
//!   spectral error bound of `Q_t` (which makes `Q_t + λI ⪰ 0`, so the
//!   surrogate is convex and FISTA converges to its global constrained
//!   minimum). Since `sup_{θ∈C} |J̃(θ) − L(θ; Γ_t)| ≤ α‖C‖` (Lemma 4.1)
//!   and the ridge shifts values by at most `λ‖C‖² ≤ α‖C‖`, the returned
//!   point satisfies `L(θ; Γ_t) − L(θ̂_t; Γ_t) = O(α‖C‖)` — Theorem 4.2's
//!   guarantee — **in every noise regime**. (The ridge stabilization is
//!   the same device as Sheffet's/the AdaSSP line of private regression.)
//! - [`DescentStrategy::PaperNoisyPgd`]. The paper-literal
//!   `NOISYPROJGRAD(C, g_t, r)` with the Proposition B.1 worst-case step
//!   size `η = ‖C‖/(√r(α + L_t))`. At practical scales this step is tiny
//!   (the union-bounded `α` is large), so many more iterations are needed
//!   to realize the same guarantee — quantified by ablation A2.

use crate::gradient_fn::PrivateGradientFn;
use pir_geometry::ConvexSet;
use pir_linalg::{vector, Matrix, PowerIterScratch};
use pir_optim::{
    fista_into_adaptive, iterations_for_accuracy, noisy_projected_gradient, FistaScratch,
    NoisyPgdConfig, QuadraticView,
};

/// Relative-progress stop for the per-step FISTA: the loop exits once one
/// projected step moves the iterate by less than this fraction of
/// `max(1, ‖θ‖)`. With warm starts the per-step quadratics barely change
/// between arrivals, so the rule typically fires well before the
/// `max_pgd_iters` ceiling; the truncation moves the released `θ_t` by at
/// most `≈ max_iters · tol` (see [`fista_into_adaptive`]), i.e. `≲ 1e-7`
/// at the default 64-iteration budget — the tolerance pinned by the
/// `adaptive_policy_stays_within_documented_tolerance` property test.
pub(crate) const FISTA_STOP_REL_TOL: f64 = 1e-10;

/// How the per-timestep constrained minimization is carried out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DescentStrategy {
    /// Minimize the released quadratic, ridge-stabilized to be convex
    /// (default; see module docs).
    #[default]
    RidgedQuadraticFista,
    /// The paper-literal `NOISYPROJGRAD` of Appendix B.
    PaperNoisyPgd,
}

/// Reusable per-step buffers for [`minimize_private_objective_into`]:
/// the ridged surrogate Hessian `A = 2(Q + λI)`, its linear term
/// `b = 2q`, and the power-iteration / FISTA iteration scratch. One of
/// these lives inside each mechanism so the steady-state descent never
/// touches the heap.
#[derive(Debug, Clone)]
pub(crate) struct DescentScratch {
    a: Matrix,
    b: Vec<f64>,
    power: PowerIterScratch,
    fista: FistaScratch,
}

impl DescentScratch {
    /// Scratch for a `d`-dimensional descent.
    pub(crate) fn new(d: usize) -> Self {
        DescentScratch {
            a: Matrix::zeros(d, d),
            b: vec![0.0; d],
            power: PowerIterScratch::new(d, d),
            fista: FistaScratch::new(d),
        }
    }
}

/// Minimize the private objective over `set` per the chosen strategy,
/// writing the minimizer into `out`. The private gradient function is
/// passed as a *borrowed view* — the released statistics `(Q, q)` stay in
/// the mechanism-owned scratch they were produced in (`q_matrix` must
/// already be symmetrized, as [`PrivateGradientFn::new`] would have done).
///
/// `ridge` is the spectral error bound of the second-moment release
/// (Lemma 4.1's matrix term); `alpha` the full gradient-error bound;
/// `lipschitz` the true objective's Lipschitz constant over `C` (used by
/// the paper path); `max_iters` the per-timestep iteration budget. On the
/// FISTA path the budget is a *ceiling*: the loop stops early once the
/// relative per-iteration progress drops below [`FISTA_STOP_REL_TOL`]
/// (warm starts make this the common case in steady state), perturbing
/// the released minimizer by no more than the documented `≈ 1e-7`.
///
/// The default [`DescentStrategy::RidgedQuadraticFista`] path performs
/// zero heap allocations; [`DescentStrategy::PaperNoisyPgd`] still
/// allocates inside the oracle closure.
#[allow(clippy::too_many_arguments)]
pub(crate) fn minimize_private_objective_into<C: ConvexSet + ?Sized>(
    strategy: DescentStrategy,
    q_matrix: &Matrix,
    q_vector: &[f64],
    set: &C,
    ridge: f64,
    alpha: f64,
    lipschitz: f64,
    max_iters: usize,
    warm: &[f64],
    scratch: &mut DescentScratch,
    out: &mut [f64],
) {
    match strategy {
        DescentStrategy::RidgedQuadraticFista => {
            let d = q_vector.len();
            // A = 2(Q + λI), b = 2q so that ½θᵀAθ − ⟨b, θ⟩ = J̃_λ(θ).
            let DescentScratch { a, b, power, fista } = scratch;
            a.copy_from_slice_checked(q_matrix.as_slice())
                .expect("descent scratch sized to the mechanism dimension");
            for i in 0..d {
                let v = a.get(i, i) + ridge;
                a.set(i, i, v);
            }
            a.scale_mut(2.0);
            vector::scaled_copy_into(2.0, q_vector, b);
            let smooth = quadratic_smoothness(a, power);
            let quad = QuadraticView::new(a, b, 0.0);
            fista_into_adaptive(
                &quad,
                set,
                smooth,
                max_iters,
                FISTA_STOP_REL_TOL,
                warm,
                fista,
                out,
            );
        }
        DescentStrategy::PaperNoisyPgd => {
            let alpha = alpha.max(1e-12);
            let r = iterations_for_accuracy(alpha, lipschitz).min(max_iters);
            let cfg = NoisyPgdConfig { iters: r, alpha, lipschitz };
            let res = noisy_projected_gradient(
                |t| {
                    // g(θ) = 2(Qθ − q) — the Definition-5 gradient oracle.
                    let mut g = q_matrix.matvec(t).expect("dimension fixed at construction");
                    vector::axpy(-1.0, q_vector, &mut g);
                    vector::scale_mut(&mut g, 2.0);
                    g
                },
                set,
                &cfg,
                warm,
            );
            out.copy_from_slice(&res);
        }
    }
}

/// Allocating convenience wrapper over
/// [`minimize_private_objective_into`], kept for tests and one-shot
/// callers: takes the assembled [`PrivateGradientFn`] (whose matrix is
/// symmetrized on construction) and returns a fresh vector.
#[allow(clippy::too_many_arguments)]
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn minimize_private_objective<C: ConvexSet + ?Sized>(
    strategy: DescentStrategy,
    grad: &PrivateGradientFn,
    set: &C,
    ridge: f64,
    alpha: f64,
    lipschitz: f64,
    max_iters: usize,
    warm: &[f64],
) -> Vec<f64> {
    let d = grad.dim();
    let mut scratch = DescentScratch::new(d);
    let mut out = vec![0.0; d];
    minimize_private_objective_into(
        strategy,
        grad.second_moment(),
        grad.first_moment(),
        set,
        ridge,
        alpha,
        lipschitz,
        max_iters,
        warm,
        &mut scratch,
        &mut out,
    );
    out
}

/// Smoothness (largest eigenvalue) bound for the surrogate's Hessian `A`:
/// a cheap power-iteration estimate with a Frobenius-norm fallback.
fn quadratic_smoothness(a: &Matrix, power: &mut PowerIterScratch) -> f64 {
    a.spectral_norm_with(1e-3, 300, power).unwrap_or_else(|_| a.frobenius_norm()).max(1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pir_geometry::{L2Ball, WidthSet};
    use pir_optim::fista_into;
    use proptest::prelude::*;

    /// The fixed-budget descent the adaptive policy replaces: identical
    /// surrogate assembly, but FISTA always runs the full `max_iters`.
    fn minimize_fixed_iterations(
        q_matrix: &Matrix,
        q_vector: &[f64],
        set: &L2Ball,
        ridge: f64,
        max_iters: usize,
        warm: &[f64],
        out: &mut [f64],
    ) {
        let d = q_vector.len();
        let mut scratch = DescentScratch::new(d);
        let DescentScratch { a, b, power, fista } = &mut scratch;
        a.copy_from_slice_checked(q_matrix.as_slice()).unwrap();
        for i in 0..d {
            let v = a.get(i, i) + ridge;
            a.set(i, i, v);
        }
        a.scale_mut(2.0);
        vector::scaled_copy_into(2.0, q_vector, b);
        let smooth = quadratic_smoothness(a, power);
        let quad = QuadraticView::new(a, b, 0.0);
        fista_into(&quad, set, smooth, max_iters, warm, fista, out);
    }

    proptest! {
        /// The relative-progress stop may truncate the per-step FISTA run
        /// but must never move the released minimizer by more than the
        /// documented tolerance relative to the full fixed-budget run —
        /// over random (symmetrized, possibly indefinite) releases, ridges,
        /// and warm starts.
        #[test]
        fn adaptive_policy_stays_within_documented_tolerance(
            raw in prop::collection::vec(-2.0f64..2.0, 16),
            qv in prop::collection::vec(-1.0f64..1.0, 4),
            warm in prop::collection::vec(-0.5f64..0.5, 4),
            ridge in 0.0f64..4.0,
        ) {
            let d = 4;
            let mut q = Matrix::zeros(d, d);
            q.copy_from_slice_checked(&raw).unwrap();
            q.symmetrize_mut();
            let set = L2Ball::unit(d);
            let max_iters = 64;
            // Frobenius ≥ spectral ≥ |λ_min|, so this ridge always makes
            // the surrogate convex (the regime the mechanisms run in).
            let lam = q.frobenius_norm() + ridge;
            let mut scratch = DescentScratch::new(d);
            let mut adaptive = vec![0.0; d];
            minimize_private_objective_into(
                DescentStrategy::RidgedQuadraticFista,
                &q,
                &qv,
                &set,
                lam,
                1.0,
                10.0,
                max_iters,
                &warm,
                &mut scratch,
                &mut adaptive,
            );
            let mut fixed = vec![0.0; d];
            minimize_fixed_iterations(&q, &qv, &set, lam, max_iters, &warm, &mut fixed);
            prop_assert!(
                vector::distance(&adaptive, &fixed) <= 1e-7,
                "adaptive {:?} drifted from fixed {:?}", adaptive, fixed
            );
        }
    }

    /// Exact statistics: both strategies must approach the constrained
    /// least-squares minimizer; the FISTA path should get much closer
    /// within the same iteration budget.
    #[test]
    fn strategies_agree_in_the_noiseless_limit_but_fista_is_sharper() {
        let d = 3;
        // Statistics of 50 points x = e0-ish, y = 0.5 x0.
        let mut q = Matrix::zeros(d, d);
        let mut qv = vec![0.0; d];
        for i in 0..50 {
            let x = vec![0.9, 0.1 * ((i % 3) as f64 - 1.0), 0.05];
            let y = 0.5 * x[0];
            q.add_outer(1.0, &x, &x).unwrap();
            vector::axpy(y, &x, &mut qv);
        }
        let grad = PrivateGradientFn::new(q, qv, 0.0, 0.0, 1.0).unwrap();
        let set = L2Ball::unit(d);
        let warm = vec![0.0; d];
        let fista_out = minimize_private_objective(
            DescentStrategy::RidgedQuadraticFista,
            &grad,
            &set,
            0.0,
            1e-6,
            2.0 * 50.0 * 2.0,
            64,
            &warm,
        );
        let pgd_out = minimize_private_objective(
            DescentStrategy::PaperNoisyPgd,
            &grad,
            &set,
            0.0,
            1e-6,
            2.0 * 50.0 * 2.0,
            64,
            &warm,
        );
        // Residual gradient norm at the FISTA point is near zero.
        let g_fista = vector::norm2(&grad.eval(&fista_out).unwrap());
        let g_pgd = vector::norm2(&grad.eval(&pgd_out).unwrap());
        assert!(g_fista < 1e-3, "fista residual {g_fista}");
        assert!(g_fista <= g_pgd + 1e-9, "fista should not be worse");
        // Both stay feasible.
        assert!(vector::norm2(&fista_out) <= set.diameter() + 1e-9);
        assert!(vector::norm2(&pgd_out) <= set.diameter() + 1e-9);
    }

    /// With an indefinite noisy Q, the ridge restores convexity and the
    /// output remains feasible and finite.
    #[test]
    fn ridge_handles_indefinite_noise() {
        let d = 4;
        let mut q = Matrix::zeros(d, d);
        // Noise-dominated: Q = -2 I + small signal.
        for i in 0..d {
            q.set(i, i, -2.0);
        }
        q.set(0, 0, -1.0);
        let grad = PrivateGradientFn::new(q, vec![0.5, 0.0, 0.0, 0.0], 2.5, 0.1, 1.0).unwrap();
        let set = L2Ball::unit(d);
        let out = minimize_private_objective(
            DescentStrategy::RidgedQuadraticFista,
            &grad,
            &set,
            2.5, // ridge = spectral error bound ≥ |λ_min|
            6.0,
            100.0,
            128,
            &vec![0.0; d],
        );
        assert!(out.iter().all(|v| v.is_finite()));
        assert!(vector::norm2(&out) <= 1.0 + 1e-9);
    }
}
