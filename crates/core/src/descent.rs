//! Per-timestep descent strategies over the private gradient function.
//!
//! Both are pure post-processing of the released statistics `(Q_t, q_t)`
//! and therefore free of privacy cost (Definition 5):
//!
//! - [`DescentStrategy::RidgedQuadraticFista`] (default). The private
//!   gradient function is the exact gradient field of the *released
//!   quadratic* `J̃(θ) = θᵀQ_tθ − 2⟨q_t, θ⟩`. We minimize the ridge-
//!   stabilized surrogate `J̃_λ(θ) = J̃(θ) + λ‖θ‖²` with `λ` set to the
//!   spectral error bound of `Q_t` (which makes `Q_t + λI ⪰ 0`, so the
//!   surrogate is convex and FISTA converges to its global constrained
//!   minimum). Since `sup_{θ∈C} |J̃(θ) − L(θ; Γ_t)| ≤ α‖C‖` (Lemma 4.1)
//!   and the ridge shifts values by at most `λ‖C‖² ≤ α‖C‖`, the returned
//!   point satisfies `L(θ; Γ_t) − L(θ̂_t; Γ_t) = O(α‖C‖)` — Theorem 4.2's
//!   guarantee — **in every noise regime**. (The ridge stabilization is
//!   the same device as Sheffet's/the AdaSSP line of private regression.)
//! - [`DescentStrategy::PaperNoisyPgd`]. The paper-literal
//!   `NOISYPROJGRAD(C, g_t, r)` with the Proposition B.1 worst-case step
//!   size `η = ‖C‖/(√r(α + L_t))`. At practical scales this step is tiny
//!   (the union-bounded `α` is large), so many more iterations are needed
//!   to realize the same guarantee — quantified by ablation A2.

use crate::gradient_fn::PrivateGradientFn;
use pir_geometry::ConvexSet;
use pir_linalg::{vector, Matrix};
use pir_optim::{
    fista, iterations_for_accuracy, noisy_projected_gradient, NoisyPgdConfig, Quadratic,
};

/// How the per-timestep constrained minimization is carried out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DescentStrategy {
    /// Minimize the released quadratic, ridge-stabilized to be convex
    /// (default; see module docs).
    #[default]
    RidgedQuadraticFista,
    /// The paper-literal `NOISYPROJGRAD` of Appendix B.
    PaperNoisyPgd,
}

/// Minimize the private objective over `set` per the chosen strategy.
///
/// `ridge` is the spectral error bound of the second-moment release
/// (Lemma 4.1's matrix term); `alpha` the full gradient-error bound;
/// `lipschitz` the true objective's Lipschitz constant over `C` (used by
/// the paper path); `max_iters` the per-timestep iteration budget.
#[allow(clippy::too_many_arguments)]
pub(crate) fn minimize_private_objective<C: ConvexSet + ?Sized>(
    strategy: DescentStrategy,
    grad: &PrivateGradientFn,
    set: &C,
    ridge: f64,
    alpha: f64,
    lipschitz: f64,
    max_iters: usize,
    warm: &[f64],
) -> Vec<f64> {
    match strategy {
        DescentStrategy::RidgedQuadraticFista => {
            let d = grad.dim();
            // A = 2(Q + λI), b = 2q so that ½θᵀAθ − ⟨b, θ⟩ = J̃_λ(θ).
            let mut a = grad.second_moment().clone();
            for i in 0..d {
                let v = a.get(i, i) + ridge;
                a.set(i, i, v);
            }
            a.scale_mut(2.0);
            let b = vector::scale(grad.first_moment(), 2.0);
            let smooth = quadratic_smoothness(&a);
            let quad = Quadratic::new(a, b, 0.0);
            fista(&quad, set, smooth, max_iters, warm)
        }
        DescentStrategy::PaperNoisyPgd => {
            let alpha = alpha.max(1e-12);
            let r = iterations_for_accuracy(alpha, lipschitz).min(max_iters);
            let cfg = NoisyPgdConfig { iters: r, alpha, lipschitz };
            noisy_projected_gradient(
                |t| grad.eval(t).expect("dimension fixed at construction"),
                set,
                &cfg,
                warm,
            )
        }
    }
}

/// Smoothness (largest eigenvalue) bound for the surrogate's Hessian `A`:
/// a cheap power-iteration estimate with a Frobenius-norm fallback.
fn quadratic_smoothness(a: &Matrix) -> f64 {
    a.spectral_norm(1e-3, 300).unwrap_or_else(|_| a.frobenius_norm()).max(1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pir_geometry::{L2Ball, WidthSet};

    /// Exact statistics: both strategies must approach the constrained
    /// least-squares minimizer; the FISTA path should get much closer
    /// within the same iteration budget.
    #[test]
    fn strategies_agree_in_the_noiseless_limit_but_fista_is_sharper() {
        let d = 3;
        // Statistics of 50 points x = e0-ish, y = 0.5 x0.
        let mut q = Matrix::zeros(d, d);
        let mut qv = vec![0.0; d];
        for i in 0..50 {
            let x = vec![0.9, 0.1 * ((i % 3) as f64 - 1.0), 0.05];
            let y = 0.5 * x[0];
            q.add_outer(1.0, &x, &x).unwrap();
            vector::axpy(y, &x, &mut qv);
        }
        let grad = PrivateGradientFn::new(q, qv, 0.0, 0.0, 1.0).unwrap();
        let set = L2Ball::unit(d);
        let warm = vec![0.0; d];
        let fista_out = minimize_private_objective(
            DescentStrategy::RidgedQuadraticFista,
            &grad,
            &set,
            0.0,
            1e-6,
            2.0 * 50.0 * 2.0,
            64,
            &warm,
        );
        let pgd_out = minimize_private_objective(
            DescentStrategy::PaperNoisyPgd,
            &grad,
            &set,
            0.0,
            1e-6,
            2.0 * 50.0 * 2.0,
            64,
            &warm,
        );
        // Residual gradient norm at the FISTA point is near zero.
        let g_fista = vector::norm2(&grad.eval(&fista_out).unwrap());
        let g_pgd = vector::norm2(&grad.eval(&pgd_out).unwrap());
        assert!(g_fista < 1e-3, "fista residual {g_fista}");
        assert!(g_fista <= g_pgd + 1e-9, "fista should not be worse");
        // Both stay feasible.
        assert!(vector::norm2(&fista_out) <= set.diameter() + 1e-9);
        assert!(vector::norm2(&pgd_out) <= set.diameter() + 1e-9);
    }

    /// With an indefinite noisy Q, the ridge restores convexity and the
    /// output remains feasible and finite.
    #[test]
    fn ridge_handles_indefinite_noise() {
        let d = 4;
        let mut q = Matrix::zeros(d, d);
        // Noise-dominated: Q = -2 I + small signal.
        for i in 0..d {
            q.set(i, i, -2.0);
        }
        q.set(0, 0, -1.0);
        let grad = PrivateGradientFn::new(q, vec![0.5, 0.0, 0.0, 0.0], 2.5, 0.1, 1.0).unwrap();
        let set = L2Ball::unit(d);
        let out = minimize_private_objective(
            DescentStrategy::RidgedQuadraticFista,
            &grad,
            &set,
            2.5, // ridge = spectral error bound ≥ |λ_min|
            6.0,
            100.0,
            128,
            &vec![0.0; d],
        );
        assert!(out.iter().all(|v| v.is_finite()));
        assert!(vector::norm2(&out) <= 1.0 + 1e-9);
    }
}
