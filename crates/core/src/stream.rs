//! The streaming interface shared by all mechanisms.

use crate::Result;
use pir_erm::DataPoint;

/// A private incremental ERM mechanism: consumes the stream one point at a
/// time and releases an estimator after *every* arrival. The full release
/// sequence is what the `(ε, δ)` event-level guarantee covers
/// (Definition 4 of the paper).
pub trait IncrementalMechanism {
    /// Human-readable mechanism name (used in experiment tables).
    fn name(&self) -> String;

    /// Ambient dimension `d` of the estimators it releases.
    fn dim(&self) -> usize;

    /// Number of stream points consumed so far.
    fn t(&self) -> usize;

    /// Consume the next point `z_t = (x_t, y_t)` and release
    /// `θ_t^{priv} ∈ C`.
    ///
    /// # Errors
    /// Domain-contract violations, stream overflow, or internal failures.
    fn observe(&mut self, z: &DataPoint) -> Result<Vec<f64>>;
}
