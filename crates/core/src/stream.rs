//! The streaming interface shared by all mechanisms.

use crate::Result;
use pir_erm::DataPoint;

/// A private incremental ERM mechanism: consumes the stream one point at a
/// time and releases an estimator after *every* arrival. The full release
/// sequence is what the `(ε, δ)` event-level guarantee covers
/// (Definition 4 of the paper).
///
/// Mechanisms are `Send` so the sharded engine (`pir-engine`) can move
/// sessions across worker threads; every in-tree implementation is plain
/// owned data and satisfies this automatically.
pub trait IncrementalMechanism: Send {
    /// Human-readable mechanism name (used in experiment tables).
    fn name(&self) -> String;

    /// Ambient dimension `d` of the estimators it releases.
    fn dim(&self) -> usize;

    /// Number of stream points consumed so far.
    fn t(&self) -> usize;

    /// Consume the next point `z_t = (x_t, y_t)` and release
    /// `θ_t^{priv} ∈ C`.
    ///
    /// # Errors
    /// Domain-contract violations, stream overflow, or internal failures.
    fn observe(&mut self, z: &DataPoint) -> Result<Vec<f64>>;

    /// Consume a batch of consecutive stream points and release one
    /// estimator per point — semantically the `batch.len()`-fold
    /// iteration of [`observe`](IncrementalMechanism::observe), and
    /// **release-for-release identical** to it for any valid batch (the
    /// batched-equals-sequential law checked by
    /// `tests/batch_equivalence.rs`).
    ///
    /// The default implementation validates every point up front and then
    /// loops. Mechanisms with per-step setup worth amortizing override
    /// it: [`crate::PrivIncReg1`] and [`crate::PrivIncReg2`] hoist their
    /// per-batch constants, reuse the outer-product scratch across the
    /// batch, and drive the tree-mechanism node updates / sketch
    /// applications through the batched entry points of `pir-continual`
    /// and `pir-sketch`.
    ///
    /// Batching tightens the failure contract: the *whole* batch is
    /// validated before anything is consumed, so a contract violation
    /// anywhere rejects the batch atomically (the sequential loop would
    /// consume the valid prefix first). The paper mechanisms additionally
    /// reject batches that would overflow the horizon without consuming
    /// anything. On an empty batch this is a no-op returning an empty
    /// vector.
    ///
    /// # Errors
    /// Domain-contract violations anywhere in the batch, stream overflow,
    /// or internal failures.
    fn observe_batch(&mut self, batch: &[DataPoint]) -> Result<Vec<Vec<f64>>> {
        let d = self.dim();
        for (i, z) in batch.iter().enumerate() {
            z.validate(d).map_err(|e| crate::CoreError::InvalidPoint {
                reason: format!("batch index {i}: {e}"),
            })?;
        }
        batch.iter().map(|z| self.observe(z)).collect()
    }
}
