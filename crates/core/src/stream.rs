//! The streaming interface shared by all mechanisms.

use crate::Result;
use pir_erm::DataPoint;

/// A private incremental ERM mechanism: consumes the stream one point at a
/// time and releases an estimator after *every* arrival. The full release
/// sequence is what the `(ε, δ)` event-level guarantee covers
/// (Definition 4 of the paper).
///
/// Mechanisms are `Send` so the sharded engine (`pir-engine`) can move
/// sessions across worker threads; every in-tree implementation is plain
/// owned data and satisfies this automatically.
pub trait IncrementalMechanism: Send {
    /// Human-readable mechanism name (used in experiment tables).
    fn name(&self) -> String;

    /// Ambient dimension `d` of the estimators it releases.
    fn dim(&self) -> usize;

    /// Number of stream points consumed so far.
    fn t(&self) -> usize;

    /// Consume the next point `z_t = (x_t, y_t)` and release
    /// `θ_t^{priv} ∈ C`.
    ///
    /// # Errors
    /// Domain-contract violations, stream overflow, or internal failures.
    fn observe(&mut self, z: &DataPoint) -> Result<Vec<f64>>;

    /// [`observe`](IncrementalMechanism::observe) writing the release into
    /// a caller-provided buffer of length [`dim`](IncrementalMechanism::dim)
    /// — **release-for-release identical** to the allocating method (the
    /// law checked by `tests/into_paths.rs`).
    ///
    /// The default implementation delegates to `observe` and copies, so
    /// every implementor gets the API for free; the paper mechanisms
    /// ([`crate::PrivIncReg1`], [`crate::PrivIncReg2`]) override it as
    /// their *primitive* and run the whole step — tree updates, gradient
    /// assembly, descent — against mechanism-owned scratch, so a
    /// steady-state call performs **zero heap allocations**. This is the
    /// entry point the engine's per-session release buffers drive.
    ///
    /// On error, `out` contents are unspecified.
    ///
    /// ```
    /// use pir_core::{IncrementalMechanism, PrivIncReg1, PrivIncReg1Config};
    /// use pir_dp::{NoiseRng, PrivacyParams};
    /// use pir_erm::DataPoint;
    /// use pir_geometry::L2Ball;
    ///
    /// let params = PrivacyParams::approx(1.0, 1e-6).unwrap();
    /// let mut rng = NoiseRng::seed_from_u64(7);
    /// let mut mech = PrivIncReg1::new(
    ///     Box::new(L2Ball::unit(3)),
    ///     16,
    ///     &params,
    ///     &mut rng,
    ///     PrivIncReg1Config::default(),
    /// )
    /// .unwrap();
    ///
    /// // One reusable release buffer for the whole stream.
    /// let mut theta = vec![0.0; mech.dim()];
    /// for _ in 0..4 {
    ///     mech.observe_into(&DataPoint::new(vec![0.5, 0.1, 0.0], 0.3), &mut theta).unwrap();
    /// }
    /// assert!(theta.iter().all(|v| v.is_finite()));
    /// ```
    ///
    /// # Errors
    /// As [`observe`](IncrementalMechanism::observe); additionally a
    /// wrong-length `out` is rejected (with
    /// [`crate::CoreError::InvalidConfig`]) before the point is consumed.
    fn observe_into(&mut self, z: &DataPoint, out: &mut [f64]) -> Result<()> {
        if out.len() != self.dim() {
            return Err(crate::CoreError::InvalidConfig {
                reason: format!(
                    "release buffer length {} != mechanism dimension {}",
                    out.len(),
                    self.dim()
                ),
            });
        }
        let theta = self.observe(z)?;
        out.copy_from_slice(&theta);
        Ok(())
    }

    /// Consume a batch of consecutive stream points and release one
    /// estimator per point — semantically the `batch.len()`-fold
    /// iteration of [`observe`](IncrementalMechanism::observe), and
    /// **release-for-release identical** to it for any valid batch (the
    /// batched-equals-sequential law checked by
    /// `tests/batch_equivalence.rs`).
    ///
    /// The default implementation validates every point up front and then
    /// loops. Mechanisms with per-step setup worth amortizing override
    /// it: [`crate::PrivIncReg1`] and [`crate::PrivIncReg2`] hoist their
    /// per-batch constants, reuse the outer-product scratch across the
    /// batch, and drive the tree-mechanism node updates / sketch
    /// applications through the batched entry points of `pir-continual`
    /// and `pir-sketch`.
    ///
    /// Batching tightens the failure contract: the *whole* batch is
    /// validated before anything is consumed, so a contract violation
    /// anywhere rejects the batch atomically (the sequential loop would
    /// consume the valid prefix first). The paper mechanisms additionally
    /// reject batches that would overflow the horizon without consuming
    /// anything. On an empty batch this is a no-op returning an empty
    /// vector.
    ///
    /// # Errors
    /// Domain-contract violations anywhere in the batch, stream overflow,
    /// or internal failures.
    fn observe_batch(&mut self, batch: &[DataPoint]) -> Result<Vec<Vec<f64>>> {
        let d = self.dim();
        for (i, z) in batch.iter().enumerate() {
            z.validate(d).map_err(|e| crate::CoreError::InvalidPoint {
                reason: format!("batch index {i}: {e}"),
            })?;
        }
        batch.iter().map(|z| self.observe(z)).collect()
    }

    /// [`observe_batch`](IncrementalMechanism::observe_batch) writing the
    /// releases into one caller-provided flat buffer of length
    /// `batch.len() · dim`, point `i`'s estimator landing in
    /// `out[i·d..(i+1)·d]` — **release-for-release identical** to the
    /// allocating batch method (and hence, by the batched-equals-
    /// sequential law, to the sequential loop).
    ///
    /// The default implementation validates the whole batch up front
    /// (keeping the atomic-rejection contract for contract violations)
    /// and then loops [`observe_into`](IncrementalMechanism::observe_into)
    /// over the chunks. The paper mechanisms override it as their batch
    /// *primitive*: per-batch constants hoisted, tree releases read where
    /// the trees maintain them, and every release written straight into
    /// the caller's buffer — so a steady-state call performs **zero heap
    /// allocations** for any batch size (the invariant pinned by
    /// `tests/alloc_steady_state.rs`).
    ///
    /// On error, `out` contents are unspecified; overriders additionally
    /// guarantee atomic rejection for overflowing batches.
    ///
    /// # Errors
    /// As [`observe_batch`](IncrementalMechanism::observe_batch); a
    /// wrong-length `out` is rejected (with
    /// [`crate::CoreError::InvalidConfig`]) before anything is consumed.
    fn observe_batch_into(&mut self, batch: &[DataPoint], out: &mut [f64]) -> Result<()> {
        let d = self.dim();
        if out.len() != batch.len() * d {
            return Err(crate::CoreError::InvalidConfig {
                reason: format!(
                    "batch release buffer length {} != {} points x dimension {d}",
                    out.len(),
                    batch.len()
                ),
            });
        }
        for (i, z) in batch.iter().enumerate() {
            z.validate(d).map_err(|e| crate::CoreError::InvalidPoint {
                reason: format!("batch index {i}: {e}"),
            })?;
        }
        for (z, chunk) in batch.iter().zip(out.chunks_exact_mut(d)) {
            self.observe_into(z, chunk)?;
        }
        Ok(())
    }

    /// Whether this mechanism supports
    /// [`save_state`](IncrementalMechanism::save_state) /
    /// [`load_state`](IncrementalMechanism::load_state). The engine's
    /// spill tier uses this to decide *eligibility* cheaply: a session
    /// whose mechanism answers `false` is simply never evicted.
    fn supports_state(&self) -> bool {
        false
    }

    /// Append this mechanism's *dynamic* state to `out` as a
    /// self-delimiting byte blob (see [`crate::state`] for the codec).
    /// Static configuration is deliberately excluded: a restore
    /// reconstructs the mechanism from its spec and seed first (which
    /// reproduces the constraint set, noise calibration, sketch matrix,
    /// and accountant charges deterministically) and then absorbs the
    /// blob. The contract, pinned by the engine's snapshot suites: after
    /// `load_state(save_state(m))` on a same-configured fresh instance,
    /// every future release is **bit-identical** to the original's.
    ///
    /// The default declines with [`crate::CoreError::StateUnsupported`]
    /// — mechanisms holding the full history ([`crate::PrivIncErm`]) or
    /// other non-serializable state simply opt out and stay resident.
    ///
    /// # Errors
    /// [`crate::CoreError::StateUnsupported`] unless overridden.
    fn save_state(&self, out: &mut Vec<u8>) -> Result<()> {
        let _ = out;
        Err(crate::CoreError::StateUnsupported { mechanism: self.name() })
    }

    /// Overwrite this mechanism's dynamic state from a blob produced by
    /// [`save_state`](IncrementalMechanism::save_state) on an instance
    /// with the same static configuration.
    ///
    /// On error the instance may be partially written: treat it as
    /// poisoned and drop it (the engine restores into a freshly spawned
    /// mechanism, so a failed load never touches a live session).
    ///
    /// # Errors
    /// [`crate::CoreError::InvalidState`] for truncated/forged/mismatched
    /// blobs; [`crate::CoreError::StateUnsupported`] unless overridden.
    fn load_state(&mut self, bytes: &[u8]) -> Result<()> {
        let _ = bytes;
        Err(crate::CoreError::StateUnsupported { mechanism: self.name() })
    }
}
