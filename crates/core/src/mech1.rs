//! Algorithm 2 — `PRIVINCREG1`: private incremental linear regression via
//! the Tree Mechanism and a private gradient function.
//!
//! Per timestep `t`:
//! 1. feed `x_t y_t` (a `d`-vector of norm ≤ 1) into one Tree Mechanism
//!    and `x_t x_tᵀ` (a `d²`-vector of Frobenius norm ≤ 1) into another,
//!    each at budget `(ε/2, δ/2)` — L2-sensitivity 2 per stream;
//! 2. assemble the private gradient function
//!    `g_t(θ) = 2(Q_t θ − q_t)` (Definition 5) with Lemma 4.1's error
//!    bound `α ≈ κ‖C‖(√d + √log(1/β))`;
//! 3. run `NOISYPROJGRAD(C, g_t, r)` with the Corollary B.2 iteration rule
//!    `r = (1 + L_t/α)²` (clamped to a compute cap — DESIGN.md, dec. 5).
//!
//! Every release is post-processing of the two tree outputs, so the whole
//! output sequence is `(ε, δ)`-DP (Theorem A.3 over the two trees).
//! Memory: `O(d² log T)` — logarithmic in the stream length.

use crate::descent::{minimize_private_objective_into, DescentScratch, DescentStrategy};
use crate::error::CoreError;
use crate::state;
use crate::stream::IncrementalMechanism;
use crate::Result;
use pir_continual::TreeMechanism;
use pir_dp::{NoiseRng, PrivacyParams};
use pir_erm::DataPoint;
use pir_geometry::ConvexSet;
use pir_linalg::{vector, Matrix};

/// Tuning knobs for [`PrivIncReg1`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrivIncReg1Config {
    /// Confidence parameter `β` used inside the error bounds (Def. 1).
    pub beta: f64,
    /// Cap on the Corollary B.2 iteration count `r` per timestep.
    pub max_pgd_iters: usize,
    /// Warm-start the per-step descent from the previous release (any
    /// start in `C` is admissible for Proposition B.1; warm starts only
    /// help in practice).
    pub warm_start: bool,
    /// Per-timestep minimization strategy (see [`DescentStrategy`]).
    pub strategy: DescentStrategy,
}

impl Default for PrivIncReg1Config {
    fn default() -> Self {
        PrivIncReg1Config {
            beta: 0.05,
            max_pgd_iters: 64,
            warm_start: true,
            strategy: DescentStrategy::default(),
        }
    }
}

/// The Tree-Mechanism-based private incremental regression mechanism
/// (Algorithm 2, Theorem 4.2).
#[derive(Debug)]
pub struct PrivIncReg1 {
    set: Box<dyn ConvexSet>,
    t_max: usize,
    config: PrivIncReg1Config,
    tree_xy: TreeMechanism,
    tree_xx: TreeMechanism,
    last_theta: Vec<f64>,
    scratch: Reg1Scratch,
    t: usize,
}

/// Mechanism-owned step buffers, preallocated once at construction and
/// reused every timestep so the steady-state
/// [`observe_into`](IncrementalMechanism::observe_into) path performs zero
/// heap allocations. The tree outputs are written straight into `q_t` /
/// `q_mat` — the `d²` `Matrix::from_vec` copy (with its redundant
/// finiteness re-validation of already-validated data) that every step
/// used to pay is gone.
#[derive(Debug, Clone)]
struct Reg1Scratch {
    /// `x_t·y_t` — the first-moment stream item.
    xy: Vec<f64>,
    /// `x_t x_tᵀ` — the second-moment stream item.
    outer: Matrix,
    /// Second-moment tree release `Q_t` (symmetrized in place).
    q_mat: Matrix,
    /// All-zeros cold start for `warm_start: false`.
    zero_start: Vec<f64>,
    /// Ridged-surrogate and iteration buffers for the per-step descent.
    descent: DescentScratch,
}

impl Reg1Scratch {
    fn new(d: usize) -> Self {
        Reg1Scratch {
            xy: vec![0.0; d],
            outer: Matrix::zeros(d, d),
            q_mat: Matrix::zeros(d, d),
            zero_start: vec![0.0; d],
            descent: DescentScratch::new(d),
        }
    }
}

impl PrivIncReg1 {
    /// Build the mechanism for streams of length up to `t_max` under the
    /// total budget `params`, constrained to `set`.
    ///
    /// # Errors
    /// Invalid privacy parameters (the Gaussian trees need `δ > 0`).
    pub fn new(
        set: Box<dyn ConvexSet>,
        t_max: usize,
        params: &PrivacyParams,
        rng: &mut NoiseRng,
        config: PrivIncReg1Config,
    ) -> Result<Self> {
        if t_max == 0 {
            return Err(CoreError::InvalidConfig { reason: "t_max must be positive".into() });
        }
        let d = set.dim();
        let half = params.halve();
        // ‖x y‖ ≤ 1 and ‖x xᵀ‖_F = ‖x‖² ≤ 1 under the §2 normalization,
        // so both streams have per-item norm bound 1 (sensitivity 2).
        let tree_xy = TreeMechanism::new(d, t_max, 1.0, &half, rng.fork())?;
        let tree_xx = TreeMechanism::new(d * d, t_max, 1.0, &half, rng.fork())?;
        let last_theta = set.project(&vec![0.0; d]);
        let scratch = Reg1Scratch::new(d);
        Ok(PrivIncReg1 { set, t_max, config, tree_xy, tree_xx, last_theta, scratch, t: 0 })
    }

    /// The constraint set.
    pub fn set(&self) -> &dyn ConvexSet {
        self.set.as_ref()
    }

    /// Spectral-norm error bound of the noisy second-moment release: the
    /// noise is a sum of at most `levels` i.i.d. Gaussian `d×d` matrices
    /// with per-entry deviation `σ`, so by Proposition A.1 its spectral
    /// norm is `O(σ·√levels·(2√d + √log(1/β)))` w.p. `≥ 1 − β`. (The
    /// generic tree bound would give the Frobenius norm, `≈ d` instead of
    /// `≈ √d` — Lemma 4.1's `√d` rests on exactly this sharpening.)
    fn matrix_spectral_error(&self, beta: f64) -> f64 {
        let d = self.set.dim() as f64;
        let levels = self.tree_xx.levels() as f64;
        self.tree_xx.sigma() * levels.sqrt() * (2.0 * d.sqrt() + (2.0 * (1.0 / beta).ln()).sqrt())
    }

    /// Lemma 4.1 gradient-error bound `α` at the configured `β`, split
    /// across the two trees and union-bounded over the horizon.
    pub fn gradient_alpha(&self) -> f64 {
        let beta_each = self.config.beta / (2.0 * self.t_max as f64);
        let me = self.matrix_spectral_error(beta_each);
        let ve = self.tree_xy.error_bound(beta_each);
        2.0 * (me * self.set.diameter() + ve)
    }

    /// Theorem 4.2 excess-risk bound (up to the universal constant):
    /// `κ‖C‖²(√d + √log(T/β))·√levels` with
    /// `κ = log^{3/2}T·√log(1/δ)/ε` folded into the tree error bounds.
    pub fn risk_bound(&self) -> f64 {
        // Excess ≤ 2α‖C‖ by Corollary B.2 given the gradient oracle.
        2.0 * self.gradient_alpha() * self.set.diameter()
    }

    /// Resident memory in `f64` slots — `O(d² log T)`.
    pub fn memory_slots(&self) -> usize {
        self.tree_xx.memory_slots() + self.tree_xy.memory_slots()
    }

    /// The `t`-independent ingredients of Lemma 4.1's error bound —
    /// `(me, α)`, functions of the tree geometry (σ, levels, d) only, so
    /// the batch paths compute them once per batch.
    fn error_ingredients(&self) -> (f64, f64) {
        let beta_each = self.config.beta / (2.0 * self.t_max as f64);
        let me = self.matrix_spectral_error(beta_each);
        let alpha = self.gradient_alpha().max(1e-12);
        (me, alpha)
    }

    /// Contract sweep + overflow check for a batch, before anything is
    /// consumed (the atomic-rejection contract of `observe_batch`).
    fn check_batch(&self, batch: &[DataPoint]) -> Result<()> {
        let d = self.set.dim();
        for (i, z) in batch.iter().enumerate() {
            z.validate(d)
                .map_err(|e| CoreError::InvalidPoint { reason: format!("batch index {i}: {e}") })?;
        }
        if self.t + batch.len() > self.t_max {
            return Err(CoreError::StreamOverflow { t_max: self.t_max });
        }
        Ok(())
    }

    /// Consume one already-validated point (Steps 3–6 of Algorithm 2) and
    /// write the release into `out` — the allocation-free per-point body
    /// shared by the step and batch paths. The first-moment release is
    /// *borrowed* from the tree via [`TreeMechanism::update_ref`] — read
    /// where the tree maintains it instead of copied out — and the descent
    /// runs on preallocated iteration buffers against borrowed views of
    /// both statistics. (The second-moment release still lands in scratch:
    /// it must be symmetrized, which the tree's internal accumulator may
    /// not be.) The tree outputs are trusted internal data: every
    /// ingredient was validated on ingest (see Matrix::from_vec_trusted
    /// for the policy), so no per-step finiteness re-scan happens.
    fn consume_into(&mut self, z: &DataPoint, me: f64, alpha: f64, out: &mut [f64]) -> Result<()> {
        self.t += 1;
        vector::scaled_copy_into(z.y, &z.x, &mut self.scratch.xy);
        let q_t = self.tree_xy.update_ref(&self.scratch.xy)?;
        self.scratch.outer.set_outer(&z.x, &z.x).map_err(CoreError::Linalg)?;
        self.tree_xx
            .update_into(self.scratch.outer.as_slice(), self.scratch.q_mat.as_mut_slice())?;
        // Step 5: the private gradient function g(θ) = 2(Q θ − q) over the
        // symmetrized release, with Lemma 4.1's α.
        self.scratch.q_mat.symmetrize_mut();
        // Step 6: minimize over C — either the paper-literal NOISYPROJGRAD
        // or the (default) ridged-quadratic FISTA; both are post-processing
        // of the released statistics (see crate::descent).
        let lipschitz = 2.0 * self.t as f64 * (1.0 + self.set.diameter());
        let warm: &[f64] =
            if self.config.warm_start { &self.last_theta } else { &self.scratch.zero_start };
        minimize_private_objective_into(
            self.config.strategy,
            &self.scratch.q_mat,
            q_t,
            &self.set,
            me,
            alpha,
            lipschitz,
            self.config.max_pgd_iters,
            warm,
            &mut self.scratch.descent,
            out,
        );
        self.last_theta.copy_from_slice(out);
        Ok(())
    }

    /// One Algorithm-2 step, written into `out` — the allocation-free
    /// primitive behind both `observe` and `observe_into`. Steady state
    /// (default strategy) touches the heap zero times: the first-moment
    /// release is borrowed from the tree, the second lands in
    /// mechanism-owned scratch, and the descent runs on preallocated
    /// iteration buffers against borrowed views of the statistics.
    fn step_into(&mut self, z: &DataPoint, out: &mut [f64]) -> Result<()> {
        let d = self.set.dim();
        if out.len() != d {
            return Err(CoreError::InvalidConfig {
                reason: format!("release buffer length {} != dimension {d}", out.len()),
            });
        }
        z.validate(d).map_err(|e| CoreError::InvalidPoint { reason: e.to_string() })?;
        if self.t >= self.t_max {
            return Err(CoreError::StreamOverflow { t_max: self.t_max });
        }
        let (me, alpha) = self.error_ingredients();
        self.consume_into(z, me, alpha, out)
    }

    /// Shared validation for [`IncrementalMechanism::load_state`]: the
    /// step counters of the blob and both trees must agree (every step
    /// feeds both trees exactly once) and the warm-start iterate must be
    /// a finite `d`-vector.
    fn check_state(&self, t: usize, last_theta: &[f64], xy_t: usize, xx_t: usize) -> Result<()> {
        if t > self.t_max {
            return Err(CoreError::InvalidState {
                reason: format!("t = {t} exceeds horizon T = {}", self.t_max),
            });
        }
        if xy_t != t || xx_t != t {
            return Err(CoreError::InvalidState {
                reason: format!(
                    "tree step counters ({xy_t}, {xx_t}) disagree with mechanism t = {t}"
                ),
            });
        }
        if last_theta.len() != self.set.dim() {
            return Err(CoreError::InvalidState {
                reason: format!(
                    "warm-start iterate has dimension {} (expected {})",
                    last_theta.len(),
                    self.set.dim()
                ),
            });
        }
        if !vector::is_finite(last_theta) {
            return Err(CoreError::InvalidState {
                reason: "warm-start iterate contains NaN/infinite entries".to_string(),
            });
        }
        Ok(())
    }
}

impl IncrementalMechanism for PrivIncReg1 {
    fn name(&self) -> String {
        "priv-inc-reg-1 (tree mechanism)".to_string()
    }

    fn dim(&self) -> usize {
        self.set.dim()
    }

    fn t(&self) -> usize {
        self.t
    }

    fn observe(&mut self, z: &DataPoint) -> Result<Vec<f64>> {
        let mut out = vec![0.0; self.set.dim()];
        self.step_into(z, &mut out)?;
        Ok(out)
    }

    fn observe_into(&mut self, z: &DataPoint, out: &mut [f64]) -> Result<()> {
        self.step_into(z, out)
    }

    /// Amortized batch path — release-for-release identical to the
    /// sequential loop (each point runs the same per-point body, against
    /// the same tree states, in the same order):
    ///
    /// 1. one contract sweep + overflow check over the batch (atomic
    ///    rejection);
    /// 2. the `t`-independent error bounds (`α` ingredients of Lemma 4.1)
    ///    hoisted out of the loop;
    /// 3. both trees and the per-step descent driven per point on the
    ///    mechanism's own step scratch, the first-moment release borrowed
    ///    from its tree — the only per-point allocation is the returned
    ///    estimator (the flat-buffer
    ///    [`observe_batch_into`](IncrementalMechanism::observe_batch_into)
    ///    form performs none at all).
    fn observe_batch(&mut self, batch: &[DataPoint]) -> Result<Vec<Vec<f64>>> {
        if batch.is_empty() {
            return Ok(Vec::new());
        }
        self.check_batch(batch)?;
        let (me, alpha) = self.error_ingredients();
        let d = self.set.dim();
        let mut out = Vec::with_capacity(batch.len());
        for z in batch {
            let mut theta = vec![0.0; d];
            self.consume_into(z, me, alpha, &mut theta)?;
            out.push(theta);
        }
        Ok(out)
    }

    /// The zero-allocation batch primitive: identical consumption order
    /// and releases as [`observe_batch`](IncrementalMechanism::observe_batch),
    /// written into the caller's flat buffer. Steady state touches the
    /// heap zero times for any batch size.
    fn observe_batch_into(&mut self, batch: &[DataPoint], out: &mut [f64]) -> Result<()> {
        let d = self.set.dim();
        if out.len() != batch.len() * d {
            return Err(CoreError::InvalidConfig {
                reason: format!(
                    "batch release buffer length {} != {} points x dimension {d}",
                    out.len(),
                    batch.len()
                ),
            });
        }
        if batch.is_empty() {
            return Ok(());
        }
        self.check_batch(batch)?;
        let (me, alpha) = self.error_ingredients();
        for (z, chunk) in batch.iter().zip(out.chunks_exact_mut(d)) {
            self.consume_into(z, me, alpha, chunk)?;
        }
        Ok(())
    }

    fn supports_state(&self) -> bool {
        true
    }

    /// Dynamic state: step counter, warm-start iterate, and the two tree
    /// states (`O(d² log T)` bytes — the same asymptotics as the resident
    /// mechanism). Scratch buffers are excluded: every step overwrites
    /// them before reading, so they carry no information across steps.
    fn save_state(&self, out: &mut Vec<u8>) -> Result<()> {
        state::put_u8(out, state::TAG_REG1);
        state::put_u64(out, self.t as u64);
        state::put_f64_slice(out, &self.last_theta);
        state::put_tree(out, &self.tree_xy.export_state());
        state::put_tree(out, &self.tree_xx.export_state());
        Ok(())
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<()> {
        let mut r = state::StateReader::new(bytes);
        r.expect_tag(state::TAG_REG1, "priv-inc-reg-1")?;
        let t = r.take_u64("step counter")? as usize;
        let last_theta = r.take_f64_vec("warm-start iterate")?;
        let xy = r.take_tree("first-moment tree")?;
        let xx = r.take_tree("second-moment tree")?;
        r.finish()?;
        self.check_state(t, &last_theta, xy.t, xx.t)?;
        self.tree_xy.restore_state(&xy)?;
        self.tree_xx.restore_state(&xx)?;
        self.t = t;
        self.last_theta.copy_from_slice(&last_theta);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pir_geometry::L2Ball;

    fn params() -> PrivacyParams {
        PrivacyParams::approx(1.0, 1e-5).unwrap()
    }

    fn stream(n: usize, d: usize, seed: u64) -> Vec<DataPoint> {
        let mut rng = NoiseRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let x = vector::scale(&rng.unit_sphere(d), 0.9);
                let y = (0.8 * x[0]).clamp(-1.0, 1.0);
                DataPoint::new(x, y)
            })
            .collect()
    }

    #[test]
    fn releases_feasible_estimates_every_step() {
        let mut rng = NoiseRng::seed_from_u64(1);
        let set = L2Ball::unit(4);
        let mut mech =
            PrivIncReg1::new(Box::new(set), 16, &params(), &mut rng, PrivIncReg1Config::default())
                .unwrap();
        for z in stream(16, 4, 2) {
            let theta = mech.observe(&z).unwrap();
            assert_eq!(theta.len(), 4);
            assert!(vector::norm2(&theta) <= 1.0 + 1e-9);
        }
        assert_eq!(mech.t(), 16);
    }

    #[test]
    fn tracks_signal_at_generous_epsilon() {
        // ε → large ⇒ trees are nearly exact ⇒ the mechanism approaches
        // the true incremental least-squares path.
        let loose = PrivacyParams::approx(1e6, 1e-5).unwrap();
        let mut rng = NoiseRng::seed_from_u64(3);
        let mut mech = PrivIncReg1::new(
            Box::new(L2Ball::unit(3)),
            64,
            &loose,
            &mut rng,
            PrivIncReg1Config { max_pgd_iters: 400, ..Default::default() },
        )
        .unwrap();
        let mut last = vec![0.0; 3];
        for z in stream(64, 3, 4) {
            last = mech.observe(&z).unwrap();
        }
        // Signal is 0.8·e₀ (inside the unit ball).
        assert!((last[0] - 0.8).abs() < 0.15, "{last:?}");
        assert!(last[1].abs() < 0.15 && last[2].abs() < 0.15, "{last:?}");
    }

    #[test]
    fn rejects_contract_violations_and_overflow() {
        let mut rng = NoiseRng::seed_from_u64(5);
        let mut mech = PrivIncReg1::new(
            Box::new(L2Ball::unit(2)),
            1,
            &params(),
            &mut rng,
            PrivIncReg1Config::default(),
        )
        .unwrap();
        assert!(matches!(
            mech.observe(&DataPoint::new(vec![2.0, 0.0], 0.0)),
            Err(CoreError::InvalidPoint { .. })
        ));
        assert!(matches!(
            mech.observe(&DataPoint::new(vec![0.5, 0.0], 2.0)),
            Err(CoreError::InvalidPoint { .. })
        ));
        mech.observe(&DataPoint::new(vec![0.5, 0.0], 0.5)).unwrap();
        assert!(matches!(
            mech.observe(&DataPoint::new(vec![0.5, 0.0], 0.5)),
            Err(CoreError::StreamOverflow { .. })
        ));
    }

    #[test]
    fn memory_grows_logarithmically_in_t() {
        let mut rng = NoiseRng::seed_from_u64(6);
        let m1 = PrivIncReg1::new(
            Box::new(L2Ball::unit(4)),
            1 << 6,
            &params(),
            &mut rng,
            PrivIncReg1Config::default(),
        )
        .unwrap();
        let m2 = PrivIncReg1::new(
            Box::new(L2Ball::unit(4)),
            1 << 12,
            &params(),
            &mut rng,
            PrivIncReg1Config::default(),
        )
        .unwrap();
        assert!(m2.memory_slots() < 2 * m1.memory_slots());
    }

    #[test]
    fn risk_bound_scales_as_sqrt_d() {
        let mut rng = NoiseRng::seed_from_u64(7);
        let mut bound_at = |d: usize| {
            PrivIncReg1::new(
                Box::new(L2Ball::unit(d)),
                256,
                &params(),
                &mut rng,
                PrivIncReg1Config::default(),
            )
            .unwrap()
            .risk_bound()
        };
        let b4 = bound_at(4);
        let b64 = bound_at(64);
        // Theorem 4.2: bound ∝ √d + additive √log(T/β) terms. A 16×
        // dimension increase gives ≈ 4× growth asymptotically; at these
        // small d the additive terms drag the ratio down (the asymptotic
        // slope is verified at scale by experiment E3).
        let ratio = b64 / b4;
        assert!(ratio > 1.8 && ratio < 8.0, "ratio {ratio}");
    }

    #[test]
    fn save_load_state_is_bit_identical() {
        // Interrupt a stream at an awkward offset (t = 5, multiple active
        // tree levels), move the state into a same-configured fresh
        // instance, and require every future release to match bit-for-bit.
        let spawn = || {
            let mut rng = NoiseRng::seed_from_u64(31);
            PrivIncReg1::new(
                Box::new(L2Ball::unit(3)),
                16,
                &params(),
                &mut rng,
                PrivIncReg1Config::default(),
            )
            .unwrap()
        };
        let mut live = spawn();
        let points = stream(16, 3, 77);
        for z in &points[..5] {
            live.observe(z).unwrap();
        }
        let mut blob = Vec::new();
        live.save_state(&mut blob).unwrap();
        let mut restored = spawn();
        restored.load_state(&blob).unwrap();
        assert_eq!(restored.t(), 5);
        for z in &points[5..] {
            assert_eq!(live.observe(z).unwrap(), restored.observe(z).unwrap());
        }
    }

    #[test]
    fn load_state_rejects_corrupt_blobs() {
        let mut rng = NoiseRng::seed_from_u64(32);
        let mut mech = PrivIncReg1::new(
            Box::new(L2Ball::unit(2)),
            8,
            &params(),
            &mut rng,
            PrivIncReg1Config::default(),
        )
        .unwrap();
        mech.observe(&DataPoint::new(vec![0.5, 0.0], 0.5)).unwrap();
        let mut blob = Vec::new();
        mech.save_state(&mut blob).unwrap();

        let fresh = |seed| {
            let mut rng = NoiseRng::seed_from_u64(seed);
            PrivIncReg1::new(
                Box::new(L2Ball::unit(2)),
                8,
                &params(),
                &mut rng,
                PrivIncReg1Config::default(),
            )
            .unwrap()
        };
        // Wrong tag.
        let mut forged = blob.clone();
        forged[0] = 99;
        assert!(matches!(fresh(1).load_state(&forged), Err(CoreError::InvalidState { .. })));
        // Truncation at every prefix.
        for cut in 0..blob.len() {
            assert!(
                matches!(fresh(2).load_state(&blob[..cut]), Err(CoreError::InvalidState { .. })),
                "cut at {cut}"
            );
        }
        // Trailing bytes.
        let mut long = blob.clone();
        long.push(0);
        assert!(matches!(fresh(3).load_state(&long), Err(CoreError::InvalidState { .. })));
    }

    #[test]
    fn reproducible_given_seed() {
        let run = |seed| {
            let mut rng = NoiseRng::seed_from_u64(seed);
            let mut mech = PrivIncReg1::new(
                Box::new(L2Ball::unit(2)),
                8,
                &params(),
                &mut rng,
                PrivIncReg1Config::default(),
            )
            .unwrap();
            stream(8, 2, 99).iter().map(|z| mech.observe(z).unwrap()).collect::<Vec<_>>()
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12));
    }
}
