//! The `(α, β)`-estimator evaluation harness (Definition 1):
//! for each `t`, the *excess empirical risk*
//! `J(θ_t; Γ_t) − J(θ̂_t; Γ_t)` of a mechanism's release against the true
//! minimizer; an incremental algorithm is an `(α, β)`-estimator when the
//! excess stays below `α` at **every** `t` with probability `1 − β`.

use crate::baselines::ExactIncremental;
use crate::stream::IncrementalMechanism;
use crate::Result;
use pir_erm::{solve_exact, DataPoint, ErmObjective, Loss};
use pir_geometry::ConvexSet;

/// One evaluated timestep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimestepRecord {
    /// Timestep `t` (1-based).
    pub t: usize,
    /// Risk of the mechanism's release: `J(θ_t; Γ_t)`.
    pub risk: f64,
    /// Minimum achievable risk: `J(θ̂_t; Γ_t)`.
    pub opt: f64,
    /// Excess risk `risk − opt` (clamped at 0 against oracle slack).
    pub excess: f64,
}

/// Evaluation result over a full stream.
#[derive(Debug, Clone)]
pub struct ExcessRiskReport {
    /// Mechanism name (from [`IncrementalMechanism::name`]).
    pub mechanism: String,
    /// Per-timestep records (possibly subsampled via `eval_every`).
    pub records: Vec<TimestepRecord>,
}

impl ExcessRiskReport {
    /// Worst-case excess over the evaluated timesteps — the `α` of
    /// Definition 1 realized on this run.
    pub fn max_excess(&self) -> f64 {
        self.records.iter().map(|r| r.excess).fold(0.0, f64::max)
    }

    /// Excess at the final evaluated timestep.
    pub fn final_excess(&self) -> f64 {
        self.records.last().map_or(0.0, |r| r.excess)
    }

    /// `OPT`: the minimum empirical risk at the final timestep
    /// (the quantity in Theorem 5.7's `√OPT` terms).
    pub fn final_opt(&self) -> f64 {
        self.records.last().map_or(0.0, |r| r.opt)
    }

    /// Excess-risk quantile across the evaluated timesteps (0 ≤ q ≤ 1).
    pub fn excess_quantile(&self, q: f64) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        let mut ex: Vec<f64> = self.records.iter().map(|r| r.excess).collect();
        ex.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in excess"));
        let idx = ((ex.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        ex[idx]
    }

    /// Time-averaged excess risk.
    pub fn mean_excess(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().map(|r| r.excess).sum::<f64>() / self.records.len() as f64
    }
}

/// Run a mechanism over a squared-loss stream and evaluate it against the
/// exact incremental oracle every `eval_every` steps (1 = every step).
/// Risk bookkeeping is `O(d²)` per evaluation via sufficient statistics.
///
/// # Errors
/// Propagates mechanism and oracle failures.
///
/// # Panics
/// Panics if `eval_every == 0`.
pub fn evaluate_squared_loss(
    mech: &mut dyn IncrementalMechanism,
    stream: &[DataPoint],
    set: Box<dyn ConvexSet>,
    eval_every: usize,
) -> Result<ExcessRiskReport> {
    assert!(eval_every > 0, "eval_every must be positive");
    let mut oracle = ExactIncremental::new(set);
    let mut records = Vec::with_capacity(stream.len() / eval_every + 1);
    for (i, z) in stream.iter().enumerate() {
        let theta = mech.observe(z)?;
        oracle.observe(z)?;
        let t = i + 1;
        if t % eval_every == 0 || t == stream.len() {
            let risk = oracle.risk_of(&theta)?;
            let opt = oracle.opt()?;
            records.push(TimestepRecord { t, risk, opt, excess: (risk - opt).max(0.0) });
        }
    }
    Ok(ExcessRiskReport { mechanism: mech.name(), records })
}

/// Generic-loss evaluation (for [`crate::PrivIncErm`] with e.g. logistic
/// loss): risks are computed by a pass over the history prefix and the
/// oracle is re-solved from scratch at each evaluated step, so prefer a
/// coarse `eval_every` for long streams.
///
/// # Errors
/// Propagates mechanism and solver failures.
///
/// # Panics
/// Panics if `eval_every == 0`.
pub fn evaluate_generic(
    mech: &mut dyn IncrementalMechanism,
    stream: &[DataPoint],
    loss: &dyn Loss,
    set: &dyn ConvexSet,
    eval_every: usize,
    exact_iters: usize,
) -> Result<ExcessRiskReport> {
    assert!(eval_every > 0, "eval_every must be positive");
    let d = set.dim();
    let mut records = Vec::new();
    for (i, z) in stream.iter().enumerate() {
        let theta = mech.observe(z)?;
        let t = i + 1;
        if t % eval_every == 0 || t == stream.len() {
            let prefix = &stream[..t];
            let obj = ErmObjective::new(loss, prefix, d);
            use pir_optim::Objective;
            let risk = obj.value(&theta);
            let theta_hat = solve_exact(loss, prefix, set, exact_iters)?;
            let opt = obj.value(&theta_hat);
            records.push(TimestepRecord { t, risk, opt, excess: (risk - opt).max(0.0) });
        }
    }
    Ok(ExcessRiskReport { mechanism: mech.name(), records })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::TrivialMechanism;
    use crate::mech1::{PrivIncReg1, PrivIncReg1Config};
    use pir_dp::{NoiseRng, PrivacyParams};
    use pir_geometry::L2Ball;
    use pir_linalg::vector;

    fn stream(n: usize, seed: u64) -> Vec<DataPoint> {
        let mut rng = NoiseRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let x = vector::scale(&rng.unit_sphere(3), 0.9);
                DataPoint::new(x.clone(), (0.7 * x[1]).clamp(-1.0, 1.0))
            })
            .collect()
    }

    #[test]
    fn oracle_self_evaluation_is_zero_excess() {
        // Evaluating the exact oracle against itself gives ≈ 0 excess.
        let mut mech = ExactIncremental::new(Box::new(L2Ball::unit(3)));
        let report =
            evaluate_squared_loss(&mut mech, &stream(30, 1), Box::new(L2Ball::unit(3)), 1).unwrap();
        assert!(report.max_excess() < 1e-6, "max excess {}", report.max_excess());
        assert_eq!(report.records.len(), 30);
    }

    #[test]
    fn trivial_mechanism_has_growing_excess() {
        let set = L2Ball::unit(3);
        let mut mech = TrivialMechanism::new(&set);
        let report =
            evaluate_squared_loss(&mut mech, &stream(50, 2), Box::new(L2Ball::unit(3)), 1).unwrap();
        // Excess grows with t for a signal-bearing stream.
        let early = report.records[4].excess;
        let late = report.records[49].excess;
        assert!(late > early, "late {late} !> early {early}");
        assert!(report.max_excess() > 0.0);
    }

    #[test]
    fn private_mechanism_beats_trivial_at_moderate_epsilon() {
        // The tree-noise scale is κ ≈ √2·log₂T·Δ₂·√ln(2/δ′)/ε′; the
        // private statistics only dominate it once t ≳ κ√d. T = 512 with
        // ε = 20 puts us comfortably in the interesting regime (the paper
        // bounds all carry the min{·, T} clause for exactly this reason).
        let params = PrivacyParams::approx(20.0, 1e-5).unwrap();
        let mut rng = NoiseRng::seed_from_u64(3);
        let data = stream(512, 4);
        let mut mech1 = PrivIncReg1::new(
            Box::new(L2Ball::unit(3)),
            512,
            &params,
            &mut rng,
            PrivIncReg1Config { max_pgd_iters: 128, ..Default::default() },
        )
        .unwrap();
        let r_priv =
            evaluate_squared_loss(&mut mech1, &data, Box::new(L2Ball::unit(3)), 1).unwrap();
        let set = L2Ball::unit(3);
        let mut triv = TrivialMechanism::new(&set);
        let r_triv = evaluate_squared_loss(&mut triv, &data, Box::new(L2Ball::unit(3)), 1).unwrap();
        assert!(
            r_priv.final_excess() < r_triv.final_excess(),
            "private {} !< trivial {}",
            r_priv.final_excess(),
            r_triv.final_excess()
        );
    }

    #[test]
    fn quantiles_and_subsampling() {
        let set = L2Ball::unit(3);
        let mut mech = TrivialMechanism::new(&set);
        let report =
            evaluate_squared_loss(&mut mech, &stream(40, 5), Box::new(L2Ball::unit(3)), 10)
                .unwrap();
        // t = 10, 20, 30, 40.
        assert_eq!(report.records.len(), 4);
        assert!(report.excess_quantile(1.0) >= report.excess_quantile(0.0));
        assert!(report.mean_excess() <= report.max_excess());
    }
}
