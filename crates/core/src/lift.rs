//! The lifting step of Algorithm 3 (Step 9): given the private projected
//! estimate `ϑ ∈ R^m`, recover `θ ∈ C ⊂ R^d` with `Φθ ≈ ϑ`.
//!
//! The paper's program is `argmin_θ ‖θ‖_C subject to Φθ = ϑ`, whose
//! estimation error is controlled by the M\*-bound (Theorem 5.3):
//! `‖θ − θ_true‖ = O((w(C) + ‖C‖√log(1/β))/√m)`.
//!
//! Two solvers (DESIGN.md, decision 3):
//! - [`lift_constrained_ls`] (default): FISTA on
//!   `min_{θ∈C} ‖Φθ − ϑ‖²`. The true preimage lies in `C` and attains
//!   residual ≈ 0, so the minimizer is feasible (`∈ C`, hence gauge ≤ 1)
//!   with a near-zero residual — the two facts Theorem 5.3's proof
//!   consumes. Robust, and fast with closed-form projections.
//! - [`lift_min_gauge`]: the paper's program solved literally — bisection
//!   over the gauge level `ρ` with alternating projections between `ρC`
//!   and the affine subspace `{θ : Φθ = ϑ}` (Cholesky of `ΦΦᵀ`).

use crate::error::CoreError;
use crate::Result;
use pir_geometry::ConvexSet;
use pir_linalg::{vector, CholeskyFactor, Matrix};
use pir_optim::{fista_into_adaptive, FistaScratch, Objective};
use pir_sketch::GaussianSketch;
use std::cell::RefCell;

/// Default lift: constrained least squares `min_{θ∈C} ‖Φθ − ϑ‖²` by
/// FISTA. `smoothness` must upper-bound `2‖Φ‖²` (callers cache the
/// power-iteration estimate; see [`sketch_smoothness`]).
///
/// # Errors
/// Dimension mismatch between `target` and the sketch.
pub fn lift_constrained_ls(
    sketch: &GaussianSketch,
    target: &[f64],
    set: &dyn ConvexSet,
    smoothness: f64,
    iters: usize,
    warm_start: &[f64],
) -> Result<Vec<f64>> {
    if target.len() != sketch.m() {
        return Err(CoreError::InvalidConfig {
            reason: format!("lift target dimension {} != sketch m {}", target.len(), sketch.m()),
        });
    }
    // Allocating wrapper over the `_into` primitive, so the two paths
    // cannot fork semantics (same adaptive stopping rule, same stream of
    // iterations).
    let mut scratch = LiftScratch::new(sketch.m(), sketch.d());
    let mut out = vec![0.0; sketch.d()];
    lift_constrained_ls_into(
        sketch,
        target,
        set,
        smoothness,
        iters,
        warm_start,
        &mut scratch,
        &mut out,
    );
    Ok(out)
}

/// Reusable buffers for [`lift_constrained_ls_into`]: the
/// `m`-dimensional sketch residual plus the `d`-dimensional FISTA
/// iteration buffers. The residual sits behind a [`RefCell`] because the
/// [`Objective`] gradient methods take `&self`; the dynamic borrow is
/// never contended (FISTA drives one gradient call at a time) and costs
/// no allocation.
#[derive(Debug, Clone)]
pub struct LiftScratch {
    resid: RefCell<Vec<f64>>,
    fista: FistaScratch,
}

impl LiftScratch {
    /// Buffers for an `m → d` lift.
    pub fn new(m: usize, d: usize) -> Self {
        LiftScratch { resid: RefCell::new(vec![0.0; m]), fista: FistaScratch::new(d) }
    }
}

/// [`LiftObjective`] evaluated against caller-owned residual scratch —
/// the allocation-free form [`lift_constrained_ls_into`] drives.
struct LiftObjectiveInto<'a> {
    sketch: &'a GaussianSketch,
    target: &'a [f64],
    resid: &'a RefCell<Vec<f64>>,
}

impl Objective for LiftObjectiveInto<'_> {
    fn dim(&self) -> usize {
        self.sketch.d()
    }

    fn value(&self, theta: &[f64]) -> f64 {
        let mut r = self.resid.borrow_mut();
        self.sketch.apply_into(theta, r.as_mut_slice()).expect("dimension fixed");
        vector::axpy(-1.0, self.target, r.as_mut_slice());
        vector::norm2_sq(r.as_slice())
    }

    fn gradient(&self, theta: &[f64]) -> Vec<f64> {
        let mut g = vec![0.0; self.sketch.d()];
        self.gradient_into(theta, &mut g);
        g
    }

    fn gradient_into(&self, theta: &[f64], out: &mut [f64]) {
        let mut r = self.resid.borrow_mut();
        self.sketch.apply_into(theta, r.as_mut_slice()).expect("dimension fixed");
        vector::axpy(-1.0, self.target, r.as_mut_slice());
        self.sketch.apply_t_into(r.as_slice(), out).expect("dimension fixed");
        vector::scale_mut(out, 2.0);
    }
}

/// [`lift_constrained_ls`] writing the lifted release into `out` and
/// reusing caller-owned scratch — the allocation-free form of the
/// per-step mechanism path (Algorithm 3, Step 9). Value-for-value
/// identical to the allocating function.
///
/// # Panics
/// Panics if `target`/`warm_start`/`out`/`scratch` dimensions do not
/// match the sketch (mirroring [`pir_optim::fista_into`]; the mechanism
/// fixes all of them at construction).
#[allow(clippy::too_many_arguments)]
pub fn lift_constrained_ls_into(
    sketch: &GaussianSketch,
    target: &[f64],
    set: &dyn ConvexSet,
    smoothness: f64,
    iters: usize,
    warm_start: &[f64],
    scratch: &mut LiftScratch,
    out: &mut [f64],
) {
    assert_eq!(target.len(), sketch.m(), "lift_constrained_ls_into: target/sketch mismatch");
    assert_eq!(
        scratch.resid.borrow().len(),
        sketch.m(),
        "lift_constrained_ls_into: scratch residual mismatch"
    );
    let obj = LiftObjectiveInto { sketch, target, resid: &scratch.resid };
    fista_into_adaptive(
        &obj,
        set,
        smoothness.max(1e-12),
        iters,
        LIFT_STOP_REL_TOL,
        warm_start,
        &mut scratch.fista,
        out,
    );
}

/// Relative-progress stop tolerance for the lift FISTA, mirroring the
/// descent policy (`crate::descent::FISTA_STOP_REL_TOL`): each mechanism
/// step warm-starts the lift from the previous release, whose distance to
/// the new minimizer is one step's worth of drift, so the iteration count
/// collapses once the iterate stops moving. The tolerance is looser than
/// the descent's (`1e-8` vs `1e-10`) because the lift geometry at large
/// `m` needs many more iterations to clear a `1e-10` bar than the
/// per-step ceiling allows, so a tighter setting silently degenerates to
/// the fixed budget. Any truncation moves the lifted release by a small
/// multiple of `lift_iters · tol` (FISTA momentum amplifies the
/// truncated tail; see [`fista_into_adaptive`]) — pinned below `1e-4`
/// by the `adaptive_lift_stays_within_documented_tolerance` property
/// test, orders of magnitude below both the DP noise the lift target
/// already carries and the M\*-bound estimation error (Theorem 5.3,
/// `O(w(C)/√m)`).
pub(crate) const LIFT_STOP_REL_TOL: f64 = 1e-8;

/// Smoothness constant `2‖Φ‖²` for the lift objective, estimated by power
/// iteration (do this once per sketch and cache it).
pub fn sketch_smoothness(sketch: &GaussianSketch) -> f64 {
    let s = sketch.matrix().spectral_norm(1e-6, 50_000).unwrap_or_else(|_| {
        // Conservative fallback: Frobenius norm dominates the spectral norm.
        sketch.matrix().frobenius_norm()
    });
    2.0 * s * s
}

/// Pre-factored affine-projection helper for [`lift_min_gauge`]: the
/// Euclidean projection onto `{θ : Φθ = v}` is
/// `θ − Φᵀ(ΦΦᵀ)⁻¹(Φθ − v)`, requiring one `m×m` SPD solve per step.
#[derive(Debug)]
pub struct AffinePreimage {
    gram_chol: CholeskyFactor,
}

impl AffinePreimage {
    /// Factor `ΦΦᵀ` (with a tiny ridge for numerical safety).
    ///
    /// # Errors
    /// Propagates Cholesky failures (degenerate sketches).
    pub fn new(sketch: &GaussianSketch) -> Result<Self> {
        let gram: Matrix = sketch.matrix().gram_rows();
        let gram_chol = CholeskyFactor::factor(&gram, 1e-10).map_err(CoreError::Linalg)?;
        Ok(AffinePreimage { gram_chol })
    }

    /// Project `theta` onto `{θ : Φθ = v}`.
    ///
    /// # Errors
    /// Dimension mismatches.
    pub fn project(&self, sketch: &GaussianSketch, theta: &[f64], v: &[f64]) -> Result<Vec<f64>> {
        let resid = vector::sub(&sketch.apply(theta).map_err(CoreError::Linalg)?, v);
        let z = self.gram_chol.solve(&resid).map_err(CoreError::Linalg)?;
        let corr = sketch.apply_t(&z).map_err(CoreError::Linalg)?;
        Ok(vector::sub(theta, &corr))
    }

    /// Minimum-norm preimage `Φᵀ(ΦΦᵀ)⁻¹ v`.
    ///
    /// # Errors
    /// Dimension mismatches.
    pub fn min_norm(&self, sketch: &GaussianSketch, v: &[f64]) -> Result<Vec<f64>> {
        let z = self.gram_chol.solve(v).map_err(CoreError::Linalg)?;
        sketch.apply_t(&z).map_err(CoreError::Linalg)
    }
}

/// The paper's literal program: `min ‖θ‖_C s.t. Φθ = ϑ`, via bisection on
/// the gauge level `ρ` with `pocs_iters` alternating projections per
/// feasibility probe.
///
/// # Errors
/// Dimension mismatches and degenerate sketches.
pub fn lift_min_gauge(
    sketch: &GaussianSketch,
    target: &[f64],
    set: &dyn ConvexSet,
    affine: &AffinePreimage,
    bisect_iters: usize,
    pocs_iters: usize,
) -> Result<Vec<f64>> {
    let feas_tol = (1e-6 * vector::norm2(target).max(1.0)).max(set.projection_accuracy());
    let probe = |rho: f64| -> Result<(Vec<f64>, f64)> {
        // Alternate between ρC and the affine subspace, then measure the
        // final constraint violation.
        let mut theta = affine.min_norm(sketch, target)?;
        for _ in 0..pocs_iters {
            theta = set.project_scaled(&theta, rho);
            theta = affine.project(sketch, &theta, target)?;
        }
        // End on the affine side so Φθ = ϑ exactly; report distance to ρC.
        let dist = vector::distance(&theta, &set.project_scaled(&theta, rho));
        Ok((theta, dist))
    };

    // Bracket: grow ρ until feasible.
    let mut hi = 1.0;
    let mut best: Option<Vec<f64>> = None;
    for _ in 0..60 {
        let (theta, dist) = probe(hi)?;
        if dist <= feas_tol {
            best = Some(theta);
            break;
        }
        hi *= 2.0;
    }
    let mut best = match best {
        Some(b) => b,
        None => {
            return Err(CoreError::InvalidConfig {
                reason: "lift_min_gauge: no feasible gauge level found (target may be \
                         far outside Φ·span(C))"
                    .to_string(),
            })
        }
    };
    let mut lo = 0.0;
    for _ in 0..bisect_iters {
        let mid = 0.5 * (lo + hi);
        if mid == 0.0 {
            break;
        }
        let (theta, dist) = probe(mid)?;
        if dist <= feas_tol {
            hi = mid;
            best = theta;
        } else {
            lo = mid;
        }
    }
    // Return the feasible-side iterate, snapped into C if ρ* ≤ 1 (the
    // regime the mechanism uses: θ_true ∈ C guarantees ρ* ≤ 1).
    if hi <= 1.0 {
        Ok(set.project(&best))
    } else {
        Ok(best)
    }
}

/// Theorem 5.3's estimation-error bound:
/// `O((w(C) + ‖C‖√log(1/β))/√m)` — exposed so experiments can print the
/// predicted lift error next to the measured one.
pub fn theorem_5_3_bound(width_c: f64, diameter_c: f64, m: usize, beta: f64) -> f64 {
    (width_c + diameter_c * (1.0 / beta).ln().sqrt()) / (m as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pir_dp::NoiseRng;
    use pir_geometry::{L1Ball, L2Ball, WidthSet};
    use pir_optim::fista_into;
    use proptest::prelude::*;

    fn rng() -> NoiseRng {
        NoiseRng::seed_from_u64(31)
    }

    proptest! {
        /// The adaptive stop may truncate the lift FISTA run but must
        /// never move the lifted release by more than the documented
        /// tolerance relative to the full fixed-budget run — over random
        /// sketches, targets, and warm starts (cold and near-converged).
        #[test]
        fn adaptive_lift_stays_within_documented_tolerance(
            seed in 0u64..64,
            target_scale in 0.1f64..2.0,
            warm_scale in 0.0f64..0.5,
        ) {
            let (m, d) = (6, 16);
            let mut r = NoiseRng::seed_from_u64(seed);
            let sketch = GaussianSketch::sample(m, d, &mut r);
            let target: Vec<f64> = (0..m).map(|_| r.gaussian(0.0, target_scale)).collect();
            let warm: Vec<f64> = (0..d).map(|_| r.gaussian(0.0, warm_scale)).collect();
            let set = L2Ball::unit(d);
            let smooth = sketch_smoothness(&sketch);
            let iters = 128;
            let mut scratch = LiftScratch::new(m, d);
            let mut adaptive = vec![0.0; d];
            lift_constrained_ls_into(
                &sketch, &target, &set, smooth, iters, &warm, &mut scratch, &mut adaptive,
            );
            // Fixed-budget reference: the same objective, no early stop.
            let obj = LiftObjectiveInto { sketch: &sketch, target: &target, resid: &scratch.resid };
            let mut fixed = vec![0.0; d];
            let mut fista = FistaScratch::new(d);
            fista_into(&obj, &set, smooth.max(1e-12), iters, &warm, &mut fista, &mut fixed);
            // Documented bound: a small multiple of
            // iters · LIFT_STOP_REL_TOL ≈ 1e-6 (momentum amplifies the
            // truncated tail; ~1e-5 observed at these settings).
            prop_assert!(
                vector::distance(&adaptive, &fixed) <= 1e-4,
                "adaptive lift {:?} drifted from fixed {:?}", adaptive, fixed
            );
        }
    }

    #[test]
    fn constrained_ls_recovers_sparse_preimage() {
        // θ_true is 1-sparse in d = 60, C = B₁; m = 25 ≫ w(B₁)² suffices.
        let mut r = rng();
        let d = 60;
        let sketch = GaussianSketch::sample(25, d, &mut r);
        let mut theta_true = vec![0.0; d];
        theta_true[7] = 1.0;
        let target = sketch.apply(&theta_true).unwrap();
        let set = L1Ball::unit(d);
        let smooth = sketch_smoothness(&sketch);
        let theta =
            lift_constrained_ls(&sketch, &target, &set, smooth, 600, &vec![0.0; d]).unwrap();
        let err = vector::distance(&theta, &theta_true);
        assert!(err < 0.15, "recovery error {err}");
        assert!(vector::norm1(&theta) <= 1.0 + 1e-6);
    }

    #[test]
    fn min_gauge_variant_agrees_with_ls_on_sparse_instance() {
        let mut r = rng();
        let d = 40;
        let sketch = GaussianSketch::sample(20, d, &mut r);
        let mut theta_true = vec![0.0; d];
        theta_true[3] = 0.8;
        let target = sketch.apply(&theta_true).unwrap();
        let set = L1Ball::unit(d);
        let affine = AffinePreimage::new(&sketch).unwrap();
        let theta = lift_min_gauge(&sketch, &target, &set, &affine, 25, 200).unwrap();
        let err = vector::distance(&theta, &theta_true);
        assert!(err < 0.25, "recovery error {err}");
    }

    #[test]
    fn affine_projection_satisfies_constraint() {
        let mut r = rng();
        let sketch = GaussianSketch::sample(6, 20, &mut r);
        let affine = AffinePreimage::new(&sketch).unwrap();
        let v = r.gaussian_vec(6, 1.0);
        let theta0 = r.gaussian_vec(20, 1.0);
        let p = affine.project(&sketch, &theta0, &v).unwrap();
        let resid = vector::sub(&sketch.apply(&p).unwrap(), &v);
        assert!(vector::norm2(&resid) < 1e-8, "residual {}", vector::norm2(&resid));
        // Min-norm preimage also satisfies the constraint.
        let mn = affine.min_norm(&sketch, &v).unwrap();
        let resid2 = vector::sub(&sketch.apply(&mn).unwrap(), &v);
        assert!(vector::norm2(&resid2) < 1e-8);
    }

    #[test]
    fn ls_lift_into_is_identical_to_ls_lift_and_scratch_is_reusable() {
        let mut r = rng();
        let d = 30;
        let m = 12;
        let sketch = GaussianSketch::sample(m, d, &mut r);
        let mut theta_true = vec![0.0; d];
        theta_true[5] = 0.9;
        let target = sketch.apply(&theta_true).unwrap();
        let set = L1Ball::unit(d);
        let smooth = sketch_smoothness(&sketch);
        let expect =
            lift_constrained_ls(&sketch, &target, &set, smooth, 200, &vec![0.0; d]).unwrap();
        let mut scratch = LiftScratch::new(m, d);
        let mut out = vec![0.0; d];
        // Dirty scratch from a previous run must not leak into the next.
        lift_constrained_ls_into(
            &sketch,
            &target,
            &set,
            smooth,
            7,
            &[0.01; 30],
            &mut scratch,
            &mut out,
        );
        lift_constrained_ls_into(
            &sketch,
            &target,
            &set,
            smooth,
            200,
            &vec![0.0; d],
            &mut scratch,
            &mut out,
        );
        assert_eq!(out, expect);
    }

    #[test]
    fn ls_lift_validates_target_dimension() {
        let mut r = rng();
        let sketch = GaussianSketch::sample(4, 10, &mut r);
        let set = L2Ball::unit(10);
        assert!(lift_constrained_ls(&sketch, &[1.0; 3], &set, 1.0, 10, &[0.0; 10]).is_err());
    }

    #[test]
    fn theorem_bound_shrinks_with_m() {
        let b1 = theorem_5_3_bound(3.0, 1.0, 16, 0.05);
        let b2 = theorem_5_3_bound(3.0, 1.0, 256, 0.05);
        assert!((b1 / b2 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn lift_error_within_theorem_bound_scaled() {
        // Empirical check of the M*-bound shape: error ≤ c·bound for a
        // small constant c across m.
        let mut r = rng();
        let d = 80;
        let set = L1Ball::unit(d);
        for m in [20usize, 60] {
            let sketch = GaussianSketch::sample(m, d, &mut r);
            let mut theta_true = vec![0.0; d];
            theta_true[11] = -1.0;
            let target = sketch.apply(&theta_true).unwrap();
            let smooth = sketch_smoothness(&sketch);
            let theta =
                lift_constrained_ls(&sketch, &target, &set, smooth, 800, &vec![0.0; d]).unwrap();
            let err = vector::distance(&theta, &theta_true);
            let bound = theorem_5_3_bound(set.width_bound(), set.diameter(), m, 0.05);
            assert!(err <= 2.0 * bound, "m={m}: err {err} vs bound {bound}");
        }
    }
}
