//! Baselines the paper compares against.
//!
//! - [`naive_recompute`] — the §1 straw man: run the private batch solver
//!   at *every* timestep. With `T` invocations the advanced-composition
//!   budget forces `ε′ ≈ ε/√T` per run, inflating the risk by `≈ √T` over
//!   the batch bound.
//! - [`TrivialMechanism`] — ignores the data entirely; private for free
//!   with excess risk `≤ 2TL‖C‖` (§1.1). Every interesting bound must
//!   beat this.
//! - [`ExactIncremental`] — the *non-private* incremental least-squares
//!   minimizer from running sufficient statistics: the oracle `θ̂_t` of
//!   Definition 1 and the `ε → ∞` limit of the private mechanisms.

use crate::error::CoreError;
use crate::generic::{PrivIncErm, TauRule};
use crate::state;
use crate::stream::IncrementalMechanism;
use crate::Result;
use pir_dp::{NoiseRng, PrivacyParams};
use pir_erm::{DataPoint, Loss, PrivateBatchSolver};
use pir_geometry::ConvexSet;
use pir_linalg::{vector, Matrix};
use pir_optim::{fista, Quadratic};

/// The naive per-step recomputation baseline: [`PrivIncErm`] with
/// `τ = 1`, i.e. `T` solver invocations sharing the budget.
///
/// # Errors
/// As for [`PrivIncErm::new`].
pub fn naive_recompute(
    loss: Box<dyn Loss>,
    solver: Box<dyn PrivateBatchSolver>,
    set: Box<dyn ConvexSet>,
    t_max: usize,
    params: &PrivacyParams,
    rng: NoiseRng,
) -> Result<PrivIncErm> {
    PrivIncErm::new(loss, solver, set, t_max, params, TauRule::Fixed(1), rng)
}

/// The data-independent mechanism: always releases the same fixed point
/// of `C` (here `P_C(0)`). Perfectly private; excess risk `≤ 2TL‖C‖`.
#[derive(Debug)]
pub struct TrivialMechanism {
    theta: Vec<f64>,
    dim: usize,
    t: usize,
}

impl TrivialMechanism {
    /// Anchor at `P_C(0)`.
    pub fn new(set: &dyn ConvexSet) -> Self {
        let d = set.dim();
        TrivialMechanism { theta: set.project(&vec![0.0; d]), dim: d, t: 0 }
    }
}

impl IncrementalMechanism for TrivialMechanism {
    fn name(&self) -> String {
        "trivial (data-independent)".to_string()
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn t(&self) -> usize {
        self.t
    }

    fn observe(&mut self, z: &DataPoint) -> Result<Vec<f64>> {
        z.validate(self.dim).map_err(|e| CoreError::InvalidPoint { reason: e.to_string() })?;
        self.t += 1;
        Ok(self.theta.clone())
    }

    fn supports_state(&self) -> bool {
        true
    }

    /// Dynamic state is just the step counter: the release is a fixed
    /// point of `C`, reproduced by the constructor.
    fn save_state(&self, out: &mut Vec<u8>) -> Result<()> {
        state::put_u8(out, state::TAG_TRIVIAL);
        state::put_u64(out, self.t as u64);
        Ok(())
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<()> {
        let mut r = state::StateReader::new(bytes);
        r.expect_tag(state::TAG_TRIVIAL, "trivial")?;
        let t = r.take_u64("step counter")? as usize;
        r.finish()?;
        self.t = t;
        Ok(())
    }
}

/// Exact (non-private!) incremental constrained least squares from
/// running sufficient statistics `XᵀX, Xᵀy, Σy²`, re-solved each step by
/// warm-started FISTA. `O(d²)` memory and per-step time independent of
/// `t` — this is the Definition-1 oracle `θ̂_t` and the reference
/// trajectory the private mechanisms approach as `ε → ∞`.
#[derive(Debug)]
pub struct ExactIncremental {
    set: Box<dyn ConvexSet>,
    xtx: Matrix,
    xty: Vec<f64>,
    yy: f64,
    theta: Vec<f64>,
    /// FISTA iterations per step (warm-started; default 150).
    pub iters_per_step: usize,
    t: usize,
}

impl ExactIncremental {
    /// New oracle over `set`.
    pub fn new(set: Box<dyn ConvexSet>) -> Self {
        let d = set.dim();
        let theta = set.project(&vec![0.0; d]);
        ExactIncremental {
            set,
            xtx: Matrix::zeros(d, d),
            xty: vec![0.0; d],
            yy: 0.0,
            theta,
            iters_per_step: 150,
            t: 0,
        }
    }

    /// Empirical risk `L(θ; Γ_t)` of an arbitrary `θ` against the history
    /// consumed so far, in `O(d²)` via the sufficient statistics.
    pub fn risk_of(&self, theta: &[f64]) -> Result<f64> {
        let xtx_theta = self.xtx.matvec(theta).map_err(CoreError::Linalg)?;
        Ok(vector::dot(theta, &xtx_theta) - 2.0 * vector::dot(&self.xty, theta) + self.yy)
    }

    /// The current exact minimizer estimate `θ̂_t`.
    pub fn current(&self) -> &[f64] {
        &self.theta
    }

    /// The current minimum empirical risk `L(θ̂_t; Γ_t)` (the paper's
    /// `OPT` when queried at `t = T`).
    pub fn opt(&self) -> Result<f64> {
        self.risk_of(&self.theta)
    }
}

impl IncrementalMechanism for ExactIncremental {
    fn name(&self) -> String {
        "exact incremental (non-private oracle)".to_string()
    }

    fn dim(&self) -> usize {
        self.set.dim()
    }

    fn t(&self) -> usize {
        self.t
    }

    fn observe(&mut self, z: &DataPoint) -> Result<Vec<f64>> {
        let d = self.set.dim();
        z.validate(d).map_err(|e| CoreError::InvalidPoint { reason: e.to_string() })?;
        self.t += 1;
        self.xtx.add_outer(1.0, &z.x, &z.x).map_err(CoreError::Linalg)?;
        vector::axpy(z.y, &z.x, &mut self.xty);
        self.yy += z.y * z.y;
        // min_{θ∈C} θᵀXᵀXθ − 2⟨Xᵀy, θ⟩ + Σy², smoothness ≤ 2t.
        let quad = Quadratic::least_squares(&self.xtx, &self.xty, self.yy);
        let smooth = (2.0 * self.t as f64).max(1e-9);
        self.theta = fista(&quad, &self.set, smooth, self.iters_per_step, &self.theta);
        Ok(self.theta.clone())
    }

    fn supports_state(&self) -> bool {
        true
    }

    /// Dynamic state: step counter and the running sufficient statistics
    /// `XᵀX, Xᵀy, Σy²` plus the warm-start iterate (`O(d²)` bytes). No
    /// randomness is involved, so the restore is trivially bit-exact.
    fn save_state(&self, out: &mut Vec<u8>) -> Result<()> {
        state::put_u8(out, state::TAG_EXACT);
        state::put_u64(out, self.t as u64);
        state::put_f64(out, self.yy);
        state::put_f64_slice(out, &self.theta);
        state::put_f64_slice(out, &self.xty);
        state::put_f64_slice(out, self.xtx.as_slice());
        Ok(())
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<()> {
        let mut r = state::StateReader::new(bytes);
        r.expect_tag(state::TAG_EXACT, "exact incremental")?;
        let t = r.take_u64("step counter")? as usize;
        let yy = r.take_f64("response energy")?;
        let theta = r.take_f64_vec("warm-start iterate")?;
        let xty = r.take_f64_vec("first moment")?;
        let xtx = r.take_f64_vec("second moment")?;
        r.finish()?;
        let d = self.set.dim();
        if theta.len() != d || xty.len() != d || xtx.len() != d * d {
            return Err(CoreError::InvalidState {
                reason: format!(
                    "statistic shapes ({}, {}, {}) do not match dimension {d}",
                    theta.len(),
                    xty.len(),
                    xtx.len()
                ),
            });
        }
        if !yy.is_finite()
            || !vector::is_finite(&theta)
            || !vector::is_finite(&xty)
            || !vector::is_finite(&xtx)
        {
            return Err(CoreError::InvalidState {
                reason: "sufficient statistics contain NaN/infinite entries".to_string(),
            });
        }
        self.t = t;
        self.yy = yy;
        self.theta = theta;
        self.xty = xty;
        self.xtx.as_mut_slice().copy_from_slice(&xtx);
        Ok(())
    }
}

/// Domain-membership oracle `x ↦ x ∈ G` for the §5.2 restricted setting.
pub type MembershipOracle = Box<dyn Fn(&[f64]) -> bool + Send + Sync>;

/// [`ExactIncremental`] restricted to a sub-domain `G`: points failing the
/// membership oracle are skipped entirely, so the tracked objective is the
/// §5.2 `G`-restricted risk `Σ_{x_i∈G} (y_i − ⟨x_i, θ⟩)²`. This is the
/// evaluation oracle for [`crate::RobustPrivIncReg2`].
pub struct ExactIncrementalRestricted {
    inner: ExactIncremental,
    oracle: MembershipOracle,
    skipped: usize,
}

impl std::fmt::Debug for ExactIncrementalRestricted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExactIncrementalRestricted")
            .field("inner", &self.inner)
            .field("skipped", &self.skipped)
            .finish()
    }
}

impl ExactIncrementalRestricted {
    /// New restricted oracle over `set` with domain membership `oracle`.
    pub fn new(set: Box<dyn ConvexSet>, oracle: MembershipOracle) -> Self {
        ExactIncrementalRestricted { inner: ExactIncremental::new(set), oracle, skipped: 0 }
    }

    /// `G`-restricted risk of an arbitrary `θ`.
    ///
    /// # Errors
    /// Dimension mismatches.
    pub fn risk_of(&self, theta: &[f64]) -> Result<f64> {
        self.inner.risk_of(theta)
    }

    /// `G`-restricted minimum risk at the current time.
    ///
    /// # Errors
    /// Dimension mismatches.
    pub fn opt(&self) -> Result<f64> {
        self.inner.opt()
    }

    /// Points skipped as off-domain so far.
    pub fn skipped(&self) -> usize {
        self.skipped
    }
}

impl IncrementalMechanism for ExactIncrementalRestricted {
    fn name(&self) -> String {
        "exact incremental (G-restricted oracle)".to_string()
    }

    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn t(&self) -> usize {
        self.inner.t() + self.skipped
    }

    fn observe(&mut self, z: &DataPoint) -> Result<Vec<f64>> {
        if (self.oracle)(&z.x) {
            self.inner.observe(z)
        } else {
            self.skipped += 1;
            Ok(self.inner.current().to_vec())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pir_erm::{solve_exact, SquaredLoss};
    use pir_geometry::{L1Ball, L2Ball};

    fn stream(n: usize, seed: u64) -> Vec<DataPoint> {
        let mut rng = NoiseRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let x = vector::scale(&rng.unit_sphere(3), 0.9);
                DataPoint::new(x.clone(), (0.5 * x[0] - 0.2 * x[2]).clamp(-1.0, 1.0))
            })
            .collect()
    }

    #[test]
    fn trivial_mechanism_is_constant() {
        let set = L2Ball::unit(3);
        let mut mech = TrivialMechanism::new(&set);
        let data = stream(5, 1);
        let o1 = mech.observe(&data[0]).unwrap();
        let o2 = mech.observe(&data[1]).unwrap();
        assert_eq!(o1, o2);
        assert_eq!(mech.t(), 2);
    }

    #[test]
    fn exact_incremental_matches_batch_solver() {
        let data = stream(40, 2);
        let mut oracle = ExactIncremental::new(Box::new(L2Ball::unit(3)));
        let mut last = vec![0.0; 3];
        for z in &data {
            last = oracle.observe(z).unwrap();
        }
        let batch = solve_exact(&SquaredLoss, &data, &L2Ball::unit(3), 4000).unwrap();
        assert!(vector::distance(&last, &batch) < 1e-3, "incremental {last:?} vs batch {batch:?}");
        // risk_of at the oracle's solution equals the batch objective.
        let risk = oracle.risk_of(&last).unwrap();
        let direct: f64 = data.iter().map(|z| SquaredLoss.value(&last, &z.x, z.y)).sum();
        assert!((risk - direct).abs() < 1e-9);
    }

    #[test]
    fn exact_incremental_respects_l1_constraint() {
        let data = stream(30, 3);
        let mut oracle = ExactIncremental::new(Box::new(L1Ball::new(3, 0.3)));
        for z in &data {
            let theta = oracle.observe(z).unwrap();
            assert!(vector::norm1(&theta) <= 0.3 + 1e-9);
        }
    }

    #[test]
    fn restricted_oracle_ignores_off_domain_points() {
        let data = stream(20, 7);
        // Unrestricted oracle vs one that rejects everything after t=10.
        let mut full = ExactIncremental::new(Box::new(L2Ball::unit(3)));
        let counter = std::sync::atomic::AtomicUsize::new(0);
        let mut restricted = ExactIncrementalRestricted::new(
            Box::new(L2Ball::unit(3)),
            Box::new(move |_x: &[f64]| {
                counter.fetch_add(1, std::sync::atomic::Ordering::SeqCst) < 10
            }),
        );
        for z in &data {
            full.observe(z).unwrap();
            restricted.observe(z).unwrap();
        }
        assert_eq!(restricted.skipped(), 10);
        assert_eq!(restricted.t(), 20);
        // The restricted OPT only reflects the first 10 points.
        let mut first_half = ExactIncremental::new(Box::new(L2Ball::unit(3)));
        for z in &data[..10] {
            first_half.observe(z).unwrap();
        }
        assert!((restricted.opt().unwrap() - first_half.opt().unwrap()).abs() < 1e-9);
    }

    #[test]
    fn naive_recompute_has_tau_one() {
        let mech = naive_recompute(
            Box::new(SquaredLoss),
            Box::new(pir_erm::NoisyGdSolver { iters: 4, beta: 0.1 }),
            Box::new(L2Ball::unit(3)),
            32,
            &PrivacyParams::approx(1.0, 1e-5).unwrap(),
            NoiseRng::seed_from_u64(4),
        )
        .unwrap();
        assert_eq!(mech.tau(), 1);
        assert_eq!(mech.invocations(), 32);
        // Budget per invocation is tiny — the √T penalty in action.
        assert!(mech.per_invocation().epsilon() < 1.0 / 16.0);
    }
}
