use std::fmt;

/// Errors produced by the incremental mechanisms.
#[derive(Debug)]
pub enum CoreError {
    /// The stream exceeded the declared horizon `T`.
    StreamOverflow {
        /// Declared horizon.
        t_max: usize,
    },
    /// A stream item violated the domain contract.
    InvalidPoint {
        /// What went wrong.
        reason: String,
    },
    /// Bad mechanism configuration.
    InvalidConfig {
        /// What went wrong.
        reason: String,
    },
    /// A captured state blob was rejected on load — truncated, forged, or
    /// describing a state this mechanism could never have reached.
    InvalidState {
        /// What went wrong.
        reason: String,
    },
    /// The mechanism does not support state capture/restore (e.g. it holds
    /// the full history or an opaque closure), so it cannot be snapshotted
    /// or spilled.
    StateUnsupported {
        /// The mechanism's name.
        mechanism: String,
    },
    /// Error from the DP layer.
    Dp(pir_dp::DpError),
    /// Error from the continual-release layer.
    Continual(pir_continual::ContinualError),
    /// Error from the ERM layer.
    Erm(pir_erm::ErmError),
    /// Error from the linear-algebra layer.
    Linalg(pir_linalg::LinalgError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::StreamOverflow { t_max } => {
                write!(f, "stream overflow: mechanism was constructed for T = {t_max}")
            }
            CoreError::InvalidPoint { reason } => write!(f, "invalid stream point: {reason}"),
            CoreError::InvalidConfig { reason } => {
                write!(f, "invalid mechanism configuration: {reason}")
            }
            CoreError::InvalidState { reason } => {
                write!(f, "invalid mechanism state: {reason}")
            }
            CoreError::StateUnsupported { mechanism } => {
                write!(f, "mechanism '{mechanism}' does not support state capture/restore")
            }
            CoreError::Dp(e) => write!(f, "{e}"),
            CoreError::Continual(e) => write!(f, "{e}"),
            CoreError::Erm(e) => write!(f, "{e}"),
            CoreError::Linalg(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<pir_dp::DpError> for CoreError {
    fn from(e: pir_dp::DpError) -> Self {
        CoreError::Dp(e)
    }
}

impl From<pir_continual::ContinualError> for CoreError {
    fn from(e: pir_continual::ContinualError) -> Self {
        CoreError::Continual(e)
    }
}

impl From<pir_erm::ErmError> for CoreError {
    fn from(e: pir_erm::ErmError) -> Self {
        CoreError::Erm(e)
    }
}

impl From<pir_linalg::LinalgError> for CoreError {
    fn from(e: pir_linalg::LinalgError) -> Self {
        CoreError::Linalg(e)
    }
}
