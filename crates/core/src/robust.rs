//! The §5.2 robustness extension: streams where only *some* covariates
//! come from the low-Gaussian-width domain `G ⊆ X`.
//!
//! The mechanism consults a membership oracle for `G`; points outside are
//! replaced by `(0, 0)` *before* entering the Tree Mechanisms. Crucially,
//! the substitution happens inside the private pipeline — the release
//! sequence never reveals whether any individual point was substituted
//! beyond what the `(ε, δ)` guarantee already allows (replacing `z` by
//! `z′` can flip membership, but that is exactly a neighboring-stream
//! change, which the sensitivity-2 calibration of the trees covers:
//! zeroed points are just stream items of norm 0 ≤ 1).
//!
//! Utility then holds with respect to the `G`-restricted objective
//! `Σ_{x_i ∈ G} (y_i − ⟨x_i, θ⟩)²` with `W = w(G) + w(C)` (§5.2, final
//! display).

use crate::mech2::{PrivIncReg2, PrivIncReg2Config};
use crate::stream::IncrementalMechanism;
use crate::Result;
use pir_dp::{NoiseRng, PrivacyParams};
use pir_erm::DataPoint;
use pir_geometry::ConvexSet;

/// Membership oracle for the well-behaved domain `G`.
pub type DomainOracle = Box<dyn Fn(&[f64]) -> bool + Send + Sync>;

/// [`PrivIncReg2`] with off-domain points zeroed before ingestion.
pub struct RobustPrivIncReg2 {
    inner: PrivIncReg2,
    oracle: DomainOracle,
    substituted: usize,
}

impl std::fmt::Debug for RobustPrivIncReg2 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RobustPrivIncReg2")
            .field("inner", &self.inner)
            .field("substituted", &self.substituted)
            .finish()
    }
}

impl RobustPrivIncReg2 {
    /// Build the robust mechanism; `domain_width` should bound `w(G)`
    /// (not `w(X)` — that is the whole point of the extension).
    ///
    /// # Errors
    /// As for [`PrivIncReg2::new`].
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        set: Box<dyn ConvexSet>,
        domain_width: f64,
        oracle: DomainOracle,
        t_max: usize,
        params: &PrivacyParams,
        rng: &mut NoiseRng,
        config: PrivIncReg2Config,
    ) -> Result<Self> {
        let inner = PrivIncReg2::new(set, domain_width, t_max, params, rng, config)?;
        Ok(RobustPrivIncReg2 { inner, oracle, substituted: 0 })
    }

    /// Number of stream points replaced by `(0, 0)` so far.
    ///
    /// **Privacy note:** this counter is internal state for diagnostics;
    /// it is *not* part of the private release sequence and must not be
    /// published alongside the estimates.
    pub fn substituted(&self) -> usize {
        self.substituted
    }

    /// The wrapped mechanism (e.g. to query `m`, `γ`).
    pub fn inner(&self) -> &PrivIncReg2 {
        &self.inner
    }
}

impl IncrementalMechanism for RobustPrivIncReg2 {
    fn name(&self) -> String {
        format!("robust {}", self.inner.name())
    }

    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn t(&self) -> usize {
        self.inner.t()
    }

    fn observe(&mut self, z: &DataPoint) -> Result<Vec<f64>> {
        if (self.oracle)(&z.x) {
            self.inner.observe(z)
        } else {
            self.substituted += 1;
            let zero = DataPoint::new(vec![0.0; self.inner.dim()], 0.0);
            self.inner.observe(&zero)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pir_geometry::{KSparseDomain, L1Ball, WidthSet};
    use pir_linalg::vector;

    fn params() -> PrivacyParams {
        PrivacyParams::approx(1.0, 1e-5).unwrap()
    }

    fn oracle_k_sparse(d: usize, k: usize) -> DomainOracle {
        let dom = KSparseDomain::new(d, k, 1.0);
        Box::new(move |x: &[f64]| dom.contains(x, 1e-9))
    }

    #[test]
    fn substitutes_off_domain_points() {
        let d = 20;
        let mut rng = NoiseRng::seed_from_u64(1);
        let mut mech = RobustPrivIncReg2::new(
            Box::new(L1Ball::unit(d)),
            KSparseDomain::new(d, 2, 1.0).width_bound(),
            oracle_k_sparse(d, 2),
            8,
            &params(),
            &mut rng,
            PrivIncReg2Config { m_override: Some(6), ..Default::default() },
        )
        .unwrap();
        // A 2-sparse (in-domain) point.
        let mut sparse = vec![0.0; d];
        sparse[0] = 0.5;
        sparse[3] = 0.4;
        mech.observe(&DataPoint::new(sparse, 0.3)).unwrap();
        assert_eq!(mech.substituted(), 0);
        // A dense (off-domain) point.
        let dense = vector::scale(&NoiseRng::seed_from_u64(2).unit_sphere(d), 0.9);
        mech.observe(&DataPoint::new(dense, 0.3)).unwrap();
        assert_eq!(mech.substituted(), 1);
        assert_eq!(mech.t(), 2);
    }

    #[test]
    fn all_dense_stream_degenerates_to_trivial_statistics() {
        // If every point is off-domain the mechanism sees only zeros and
        // releases stay near P_C(0) + noise-driven wander within C.
        let d = 15;
        let mut rng = NoiseRng::seed_from_u64(3);
        let mut mech = RobustPrivIncReg2::new(
            Box::new(L1Ball::unit(d)),
            1.0,
            Box::new(|_: &[f64]| false),
            6,
            &params(),
            &mut rng,
            PrivIncReg2Config { m_override: Some(5), ..Default::default() },
        )
        .unwrap();
        let mut item_rng = NoiseRng::seed_from_u64(4);
        for _ in 0..6 {
            let x = vector::scale(&item_rng.unit_sphere(d), 0.9);
            let theta = mech.observe(&DataPoint::new(x, 0.5)).unwrap();
            assert!(vector::norm1(&theta) <= 1.0 + 1e-6);
        }
        assert_eq!(mech.substituted(), 6);
    }
}
