//! The *private gradient function* of Definition 5.
//!
//! For the least-squares loss, the gradient has the linear form
//! `∇L(θ; Γ_t) = 2(X_tᵀX_t θ − X_tᵀy_t)` (equation (2) of the paper), so
//! a private estimate of the two streaming sums `Σ x_i x_iᵀ` and
//! `Σ x_i y_i` yields a function `g_t(θ) = 2(Q_t θ − q_t)` that can be
//! evaluated at *any* `θ` without further privacy cost (post-processing).

use crate::error::CoreError;
use crate::Result;
use pir_linalg::{vector, Matrix};

/// A released private gradient function `g(θ) = 2(Qθ − q)`.
#[derive(Debug, Clone)]
pub struct PrivateGradientFn {
    q_matrix: Matrix,
    q_vector: Vec<f64>,
    /// Uniform gradient-error bound `α` such that w.p. `≥ 1 − β`,
    /// `sup_{θ∈C} ‖g(θ) − ∇L(θ)‖ ≤ α` (Lemma 4.1 of the paper).
    alpha: f64,
}

impl PrivateGradientFn {
    /// Assemble from released noisy statistics.
    ///
    /// `matrix_error` and `vector_error` are the high-probability error
    /// bounds of the two underlying Tree Mechanism releases
    /// (Proposition C.1); `diameter` is `‖C‖`. Lemma 4.1 combines them:
    /// `‖g(θ) − ∇L(θ)‖ ≤ 2(‖Q − Σxxᵀ‖·‖θ‖ + ‖q − Σxy‖)
    ///                 ≤ 2(matrix_error·diameter + vector_error)`.
    ///
    /// The noisy second-moment matrix is symmetrized on entry (the true
    /// statistic is symmetric; symmetry keeps the induced quadratic model
    /// well-behaved).
    ///
    /// # Errors
    /// [`CoreError::InvalidConfig`] on a non-square `q_matrix` or a
    /// dimension mismatch with `q_vector`.
    pub fn new(
        mut q_matrix: Matrix,
        q_vector: Vec<f64>,
        matrix_error: f64,
        vector_error: f64,
        diameter: f64,
    ) -> Result<Self> {
        if q_matrix.rows() != q_matrix.cols() {
            return Err(CoreError::InvalidConfig {
                reason: "private gradient needs a square second-moment matrix".to_string(),
            });
        }
        if q_matrix.rows() != q_vector.len() {
            return Err(CoreError::InvalidConfig {
                reason: format!(
                    "second-moment dimension {} != first-moment dimension {}",
                    q_matrix.rows(),
                    q_vector.len()
                ),
            });
        }
        q_matrix.symmetrize_mut();
        let alpha = 2.0 * (matrix_error * diameter + vector_error);
        Ok(PrivateGradientFn { q_matrix, q_vector, alpha })
    }

    /// Dimension of the gradient.
    pub fn dim(&self) -> usize {
        self.q_vector.len()
    }

    /// The Lemma 4.1 uniform error bound `α`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Evaluate `g(θ) = 2(Qθ − q)` — pure post-processing, free of
    /// privacy cost (the point Definition 5 is built around).
    ///
    /// # Errors
    /// Dimension mismatch.
    pub fn eval(&self, theta: &[f64]) -> Result<Vec<f64>> {
        let mut g = self.q_matrix.matvec(theta)?;
        vector::axpy(-1.0, &self.q_vector, &mut g);
        vector::scale_mut(&mut g, 2.0);
        Ok(g)
    }

    /// The released second-moment estimate `Q`.
    pub fn second_moment(&self) -> &Matrix {
        &self.q_matrix
    }

    /// The released first-moment estimate `q`.
    pub fn first_moment(&self) -> &[f64] {
        &self.q_vector
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluates_linear_gradient_form() {
        // Q = I, q = (1, 0): g(θ) = 2(θ − q).
        let g = PrivateGradientFn::new(Matrix::identity(2), vec![1.0, 0.0], 0.0, 0.0, 1.0).unwrap();
        assert_eq!(g.eval(&[0.0, 0.0]).unwrap(), vec![-2.0, 0.0]);
        assert_eq!(g.eval(&[1.0, 1.0]).unwrap(), vec![0.0, 2.0]);
        assert!(g.eval(&[1.0]).is_err());
    }

    #[test]
    fn alpha_combines_component_errors_lemma41() {
        let g = PrivateGradientFn::new(Matrix::identity(3), vec![0.0; 3], 0.5, 0.25, 2.0).unwrap();
        assert!((g.alpha() - 2.0 * (0.5 * 2.0 + 0.25)).abs() < 1e-12);
    }

    #[test]
    fn symmetrizes_noisy_second_moment() {
        let q = Matrix::from_rows(&[&[1.0, 0.4], &[0.0, 1.0]]).unwrap();
        let g = PrivateGradientFn::new(q, vec![0.0, 0.0], 0.0, 0.0, 1.0).unwrap();
        assert_eq!(g.second_moment().get(0, 1), 0.2);
        assert_eq!(g.second_moment().get(1, 0), 0.2);
    }

    #[test]
    fn rejects_mismatched_shapes() {
        assert!(PrivateGradientFn::new(Matrix::zeros(2, 3), vec![0.0; 2], 0.0, 0.0, 1.0).is_err());
        assert!(PrivateGradientFn::new(Matrix::identity(2), vec![0.0; 3], 0.0, 0.0, 1.0).is_err());
    }

    #[test]
    fn matches_true_gradient_within_alpha_for_exact_statistics() {
        // With exact statistics (zero tree error) g equals ∇L exactly.
        let xs = [vec![0.6, 0.0], vec![0.3, 0.4]];
        let ys = [0.5, -0.2];
        let mut xtx = Matrix::zeros(2, 2);
        let mut xty = vec![0.0; 2];
        for (x, y) in xs.iter().zip(&ys) {
            xtx.add_outer(1.0, x, x).unwrap();
            vector::axpy(*y, x, &mut xty);
        }
        let g = PrivateGradientFn::new(xtx.clone(), xty.clone(), 0.0, 0.0, 1.0).unwrap();
        let theta = [0.2, -0.7];
        let expect = {
            let mut e = xtx.matvec(&theta).unwrap();
            vector::axpy(-1.0, &xty, &mut e);
            vector::scale(&e, 2.0)
        };
        assert!(vector::distance(&g.eval(&theta).unwrap(), &expect) < 1e-12);
        assert_eq!(g.alpha(), 0.0);
    }
}
