//! Mechanism 1 — `PRIVINCERM`: the generic transformation of a private
//! batch ERM solver into a private incremental ERM mechanism (§3).
//!
//! The batch solver runs only at timesteps divisible by `τ`; in between,
//! the previous output is replayed. Each datapoint is therefore touched by
//! at most `k = ⌈T/τ⌉` solver invocations, and the per-invocation budget
//! `ε′ = ε/(2√(2k ln(2/δ)))`, `δ′ = δ/(2k)` composes (advanced
//! composition, Theorem A.4 with slack `δ/2`) back to at most `(ε, δ)` —
//! the privacy argument in the proof of Theorem 3.1.
//!
//! `τ` balances *staleness* (up to `τ·L‖C‖` extra risk from replaying an
//! old estimator) against *noise* (smaller per-invocation `ε′`): the three
//! parts of Theorem 3.1 correspond to the three [`TauRule`]s.

use crate::error::CoreError;
use crate::stream::IncrementalMechanism;
use crate::Result;
use pir_dp::{composition, NoiseRng, PrivacyParams};
use pir_erm::{DataPoint, Loss, PrivateBatchSolver};
use pir_geometry::ConvexSet;

/// How to choose the recomputation interval `τ`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TauRule {
    /// Fixed interval (1 = the naive per-step recomputation of §1).
    Fixed(usize),
    /// Theorem 3.1(1): `τ = ⌈(Td)^{1/3}/ε^{2/3}⌉` for general convex
    /// losses with the noisy-GD batch solver.
    Convex,
    /// Theorem 3.1(2): `τ = ⌈√d·L/(ν^{1/2} ε ‖C‖^{1/2})⌉` for
    /// `ν`-strongly convex losses with output perturbation.
    StronglyConvex,
    /// Theorem 3.1(3): `τ = ⌈√T·w(C)·C_ℓ^{1/4}/((L‖C‖)^{1/4} ε^{1/2})⌉`
    /// for low-Gaussian-width constraint sets with private Frank–Wolfe.
    LowWidth,
}

impl TauRule {
    /// Resolve the rule into a concrete `τ ∈ [1, T]`.
    pub fn resolve(
        &self,
        loss: &dyn Loss,
        set: &dyn ConvexSet,
        t_max: usize,
        epsilon: f64,
    ) -> usize {
        let d = set.dim() as f64;
        let t = t_max as f64;
        let diam = set.diameter().max(1e-12);
        let lip = loss.lipschitz(set.diameter()).max(1e-12);
        let tau = match self {
            TauRule::Fixed(tau) => *tau as f64,
            TauRule::Convex => (t * d).cbrt() / epsilon.powf(2.0 / 3.0),
            TauRule::StronglyConvex => {
                let nu = loss.strong_convexity().max(1e-12);
                d.sqrt() * lip / (nu.sqrt() * epsilon * diam.sqrt())
            }
            TauRule::LowWidth => {
                let width = set.width_bound();
                let curv = loss.curvature(set.diameter()).max(1e-12);
                t.sqrt() * width * curv.powf(0.25) / ((lip * diam).powf(0.25) * epsilon.sqrt())
            }
        };
        (tau.ceil().max(1.0) as usize).min(t_max.max(1))
    }
}

/// The generic private incremental ERM mechanism (Mechanism 1).
///
/// Stores the full history (the paper places no computational constraint
/// on this mechanism — §2, footnote 2; the tree-based mechanisms of §§4–5
/// are the space-efficient alternatives for regression).
pub struct PrivIncErm {
    loss: Box<dyn Loss>,
    solver: Box<dyn PrivateBatchSolver>,
    set: Box<dyn ConvexSet>,
    t_max: usize,
    tau: usize,
    per_invocation: PrivacyParams,
    history: Vec<DataPoint>,
    last_theta: Vec<f64>,
    rng: NoiseRng,
    t: usize,
}

impl std::fmt::Debug for PrivIncErm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PrivIncErm")
            .field("solver", &self.solver.name())
            .field("tau", &self.tau)
            .field("t", &self.t)
            .finish()
    }
}

impl PrivIncErm {
    /// Build the mechanism; `rule` fixes `τ`, and the per-invocation
    /// budget follows the paper's `(ε′, δ′)` schedule for
    /// `k = ⌈T/τ⌉` invocations.
    ///
    /// # Errors
    /// Invalid configuration or privacy parameters (needs `δ > 0`).
    pub fn new(
        loss: Box<dyn Loss>,
        solver: Box<dyn PrivateBatchSolver>,
        set: Box<dyn ConvexSet>,
        t_max: usize,
        params: &PrivacyParams,
        rule: TauRule,
        rng: NoiseRng,
    ) -> Result<Self> {
        if t_max == 0 {
            return Err(CoreError::InvalidConfig { reason: "t_max must be positive".into() });
        }
        let tau = rule.resolve(loss.as_ref(), &set, t_max, params.epsilon());
        let invocations = t_max.div_ceil(tau);
        let per_invocation = composition::calibrate_advanced(params, invocations)?;
        let last_theta = set.project(&vec![0.0; set.dim()]);
        Ok(PrivIncErm {
            loss,
            solver,
            set,
            t_max,
            tau,
            per_invocation,
            history: Vec::new(),
            last_theta,
            rng,
            t: 0,
        })
    }

    /// The resolved recomputation interval `τ`.
    pub fn tau(&self) -> usize {
        self.tau
    }

    /// The per-invocation budget `(ε′, δ′)`.
    pub fn per_invocation(&self) -> PrivacyParams {
        self.per_invocation
    }

    /// Number of batch-solver invocations the schedule allows.
    pub fn invocations(&self) -> usize {
        self.t_max.div_ceil(self.tau)
    }
}

impl IncrementalMechanism for PrivIncErm {
    fn name(&self) -> String {
        format!("priv-inc-erm (τ={}, {})", self.tau, self.solver.name())
    }

    fn dim(&self) -> usize {
        self.set.dim()
    }

    fn t(&self) -> usize {
        self.t
    }

    fn observe(&mut self, z: &DataPoint) -> Result<Vec<f64>> {
        z.validate(self.set.dim())
            .map_err(|e| CoreError::InvalidPoint { reason: e.to_string() })?;
        if self.t >= self.t_max {
            return Err(CoreError::StreamOverflow { t_max: self.t_max });
        }
        self.t += 1;
        self.history.push(z.clone());
        if self.t.is_multiple_of(self.tau) {
            self.last_theta = self.solver.solve(
                self.loss.as_ref(),
                &self.history,
                &self.set,
                &self.per_invocation,
                &mut self.rng,
            )?;
        }
        Ok(self.last_theta.clone())
    }

    /// Same releases as the sequential loop, but with the atomic batch
    /// contract the engine relies on: the whole batch is validated and
    /// checked against the horizon before any point is consumed, so a
    /// rejected batch never leaves a partial prefix in the ERM history
    /// (which a retry would otherwise double-count).
    fn observe_batch(&mut self, batch: &[DataPoint]) -> Result<Vec<Vec<f64>>> {
        let d = self.set.dim();
        for (i, z) in batch.iter().enumerate() {
            z.validate(d)
                .map_err(|e| CoreError::InvalidPoint { reason: format!("batch index {i}: {e}") })?;
        }
        if self.t + batch.len() > self.t_max {
            return Err(CoreError::StreamOverflow { t_max: self.t_max });
        }
        batch.iter().map(|z| self.observe(z)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pir_erm::{NoisyGdSolver, OutputPerturbationSolver, Regularized, SquaredLoss};
    use pir_geometry::{L1Ball, L2Ball};
    use pir_linalg::vector;

    fn params() -> PrivacyParams {
        PrivacyParams::approx(1.0, 1e-5).unwrap()
    }

    fn stream(n: usize, seed: u64) -> Vec<DataPoint> {
        let mut rng = NoiseRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let x = vector::scale(&rng.unit_sphere(3), 0.9);
                DataPoint::new(x.clone(), (0.6 * x[0]).clamp(-1.0, 1.0))
            })
            .collect()
    }

    #[test]
    fn tau_rules_scale_correctly() {
        let loss = SquaredLoss;
        let set = L2Ball::unit(16);
        // Convex rule: τ grows with (Td)^{1/3}.
        let t1 = TauRule::Convex.resolve(&loss, &set, 100, 1.0);
        let t2 = TauRule::Convex.resolve(&loss, &set, 800, 1.0);
        assert!(t2 > t1, "τ should grow with T: {t1} vs {t2}");
        assert!((t2 as f64 / t1 as f64) < 3.0, "cube-root growth expected");
        // Fixed rule is clamped to [1, T].
        assert_eq!(TauRule::Fixed(0).resolve(&loss, &set, 10, 1.0), 1);
        assert_eq!(TauRule::Fixed(50).resolve(&loss, &set, 10, 1.0), 10);
        // Strongly convex rule is T-independent.
        let reg = Regularized::new(SquaredLoss, 0.5);
        let s1 = TauRule::StronglyConvex.resolve(&reg, &set, 100, 1.0);
        let s2 = TauRule::StronglyConvex.resolve(&reg, &set, 10_000, 1.0);
        assert_eq!(s1, s2.min(s1.max(s2))); // both the same unless clamped
                                            // LowWidth rule grows with √T.
        let l1 = L1Ball::unit(16);
        let w1 = TauRule::LowWidth.resolve(&loss, &l1, 100, 1.0);
        let w2 = TauRule::LowWidth.resolve(&loss, &l1, 400, 1.0);
        assert!(w2 > w1, "{w1} vs {w2}");
    }

    #[test]
    fn recomputes_only_every_tau_steps() {
        let mut mech = PrivIncErm::new(
            Box::new(SquaredLoss),
            Box::new(NoisyGdSolver { iters: 8, beta: 0.1 }),
            Box::new(L2Ball::unit(3)),
            12,
            &params(),
            TauRule::Fixed(4),
            NoiseRng::seed_from_u64(1),
        )
        .unwrap();
        assert_eq!(mech.tau(), 4);
        assert_eq!(mech.invocations(), 3);
        let mut outputs = Vec::new();
        for z in stream(12, 2) {
            outputs.push(mech.observe(&z).unwrap());
        }
        // Outputs within a τ-window are identical; they change at τ-steps.
        assert_eq!(outputs[0], outputs[1]);
        assert_eq!(outputs[1], outputs[2]);
        assert_ne!(outputs[2], outputs[3], "recomputation at t=4 expected");
        assert_eq!(outputs[4], outputs[3]);
    }

    #[test]
    fn budget_schedule_is_within_total() {
        let mech = PrivIncErm::new(
            Box::new(SquaredLoss),
            Box::new(NoisyGdSolver::default()),
            Box::new(L2Ball::unit(3)),
            64,
            &params(),
            TauRule::Fixed(8),
            NoiseRng::seed_from_u64(3),
        )
        .unwrap();
        let composed = composition::verify_within_budget(
            mech.invocations(),
            &mech.per_invocation(),
            &params(),
        )
        .unwrap();
        assert!(composed.epsilon() <= 1.0 + 1e-9);
    }

    #[test]
    fn strongly_convex_path_works_end_to_end() {
        let mut mech = PrivIncErm::new(
            Box::new(Regularized::new(SquaredLoss, 0.5)),
            Box::new(OutputPerturbationSolver { exact_iters: 300 }),
            Box::new(L2Ball::unit(3)),
            8,
            &params(),
            TauRule::StronglyConvex,
            NoiseRng::seed_from_u64(4),
        )
        .unwrap();
        for z in stream(8, 5) {
            let theta = mech.observe(&z).unwrap();
            assert!(vector::norm2(&theta) <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn overflow_and_contract_rejection() {
        let mut mech = PrivIncErm::new(
            Box::new(SquaredLoss),
            Box::new(NoisyGdSolver { iters: 4, beta: 0.1 }),
            Box::new(L2Ball::unit(2)),
            1,
            &params(),
            TauRule::Fixed(1),
            NoiseRng::seed_from_u64(6),
        )
        .unwrap();
        assert!(mech.observe(&DataPoint::new(vec![2.0, 0.0], 0.0)).is_err());
        mech.observe(&DataPoint::new(vec![0.1, 0.1], 0.1)).unwrap();
        assert!(matches!(
            mech.observe(&DataPoint::new(vec![0.1, 0.1], 0.1)),
            Err(CoreError::StreamOverflow { .. })
        ));
    }
}
