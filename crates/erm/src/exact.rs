//! Exact (non-private) constrained ERM — the reference `θ̂` that excess
//! risks in Definition 1 are measured against.

use crate::data::DataPoint;
use crate::error::ErmError;
use crate::losses::Loss;
use crate::objective::ErmObjective;
use pir_geometry::ConvexSet;
use pir_optim::{fista, projected_gradient, Objective, PgdConfig, StepSize};

/// Solve `min_{θ∈C} Σᵢ ℓ(θ; zᵢ)` to high accuracy with exact gradients.
///
/// Strategy: FISTA when a smoothness estimate is available from the loss's
/// curvature at batch scale, otherwise averaged projected subgradient with
/// a diminishing step. `iters` controls both paths; 2 000–10 000 is plenty
/// at experiment scales.
///
/// # Errors
/// [`ErmError::EmptyDataset`] for `n = 0`.
pub fn solve_exact(
    loss: &dyn Loss,
    data: &[DataPoint],
    set: &dyn ConvexSet,
    iters: usize,
) -> Result<Vec<f64>, ErmError> {
    if data.is_empty() {
        return Err(ErmError::EmptyDataset);
    }
    let d = set.dim();
    let obj = ErmObjective::new(loss, data, d);
    let n = data.len() as f64;
    let theta0 = vec![0.0; d];

    // Smoothness of the summed objective: per-sample Hessian is bounded by
    // 2‖x‖² ≤ 2 for squared loss and ¼ for logistic; use a conservative
    // 2n and fall back to the subgradient path for non-smooth losses.
    let smooth = 2.0 * n;
    let fista_result = fista(&obj, set, smooth, iters, &theta0);

    // Polish / fallback: averaged subgradient from the FISTA point; for
    // smooth losses this is a no-op improvement, for non-smooth ones it is
    // the convergent method.
    let diam = set.diameter();
    let lip = obj.lipschitz(diam).max(1e-12);
    let cfg = PgdConfig { iters, step: StepSize::DiminishingSqrt(diam / lip), average: true };
    let sub_result = projected_gradient(&obj, set, &cfg, &fista_result);

    // Keep whichever achieved a lower objective (both are feasible).
    if obj.value(&fista_result) <= obj.value(&sub_result) {
        Ok(fista_result)
    } else {
        Ok(sub_result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::losses::{LogisticLoss, SquaredLoss};
    use pir_geometry::{L1Ball, L2Ball};
    use pir_linalg::{ridge_solve, vector, Matrix};

    #[test]
    fn matches_closed_form_unconstrained_least_squares() {
        // Interior optimum in a generous ball ⇒ constrained = unconstrained.
        let data = vec![
            DataPoint::new(vec![0.8, 0.0], 0.4),
            DataPoint::new(vec![0.0, 0.6], -0.3),
            DataPoint::new(vec![0.5, 0.5], 0.05),
        ];
        let x = Matrix::from_rows(&[&[0.8, 0.0], &[0.0, 0.6], &[0.5, 0.5]]).unwrap();
        let y = [0.4, -0.3, 0.05];
        let closed = ridge_solve(&x, &y, 0.0).unwrap();
        let set = L2Ball::new(2, 10.0);
        let sol = solve_exact(&SquaredLoss, &data, &set, 5000).unwrap();
        assert!(vector::distance(&sol, &closed) < 1e-4, "{sol:?} vs {closed:?}");
    }

    #[test]
    fn lasso_constraint_is_active_for_tight_radius() {
        let data = vec![DataPoint::new(vec![1.0, 0.0], 1.0), DataPoint::new(vec![0.0, 1.0], 1.0)];
        let set = L1Ball::new(2, 0.5);
        let sol = solve_exact(&SquaredLoss, &data, &set, 5000).unwrap();
        assert!(vector::norm1(&sol) <= 0.5 + 1e-6);
        // Symmetry: both coordinates equal, on the boundary.
        assert!((sol[0] - sol[1]).abs() < 1e-3, "{sol:?}");
        assert!((vector::norm1(&sol) - 0.5).abs() < 1e-3);
    }

    #[test]
    fn logistic_separable_pushes_to_boundary() {
        let data = vec![DataPoint::new(vec![1.0, 0.0], 1.0), DataPoint::new(vec![-1.0, 0.0], -1.0)];
        let set = L2Ball::unit(2);
        let sol = solve_exact(&LogisticLoss, &data, &set, 3000).unwrap();
        // Separable data: optimum at the boundary in direction e₁.
        assert!(sol[0] > 0.9, "{sol:?}");
        assert!(sol[1].abs() < 0.05, "{sol:?}");
    }

    #[test]
    fn empty_dataset_rejected() {
        let set = L2Ball::unit(2);
        assert!(matches!(solve_exact(&SquaredLoss, &[], &set, 100), Err(ErmError::EmptyDataset)));
    }
}
