//! Differentially private *batch* ERM solvers.
//!
//! These are the black boxes Step 5 of Mechanism `PRIVINCERM` invokes
//! (§3 of the paper). Each one is `(ε, δ)`-DP with respect to a single
//! datapoint replacement in its input batch:
//!
//! | Solver | paper source | risk shape | requirement |
//! |---|---|---|---|
//! | [`NoisyGdSolver`] | Bassily et al. `[2]` | `√d·L‖C‖·polylog/ε` | convex |
//! | [`OutputPerturbationSolver`] | Chaudhuri et al. / `[2]` | `√d·L^{3/2}/(√ν ε)`-shaped | `ν`-strongly convex |
//! | [`PrivateFrankWolfeSolver`] | Talwar et al. `[46]` | `√(n)·w(C)`-shaped | convex, curvature `C_ℓ` |
//!
//! The gradient of the *sum* objective has L2-sensitivity `2L_ℓ` under a
//! one-point replacement, so iterative solvers split the budget across
//! their iterations with advanced composition
//! ([`pir_dp::composition::calibrate_advanced`]) and add per-iteration
//! Gaussian noise calibrated to that sensitivity.

use crate::data::{validate_dataset, DataPoint};
use crate::error::ErmError;
use crate::exact::solve_exact;
use crate::losses::Loss;
use crate::objective::ErmObjective;
use pir_dp::{composition, mechanisms, NoiseRng, PrivacyParams};
use pir_geometry::ConvexSet;
use pir_linalg::vector;
use pir_optim::{noisy_projected_gradient, NoisyPgdConfig, Objective};
use std::cell::RefCell;

/// Common interface of the private batch ERM solvers, as consumed by the
/// generic incremental transformation (Mechanism 1).
pub trait PrivateBatchSolver: Send + Sync + std::fmt::Debug {
    /// Short name for experiment tables.
    fn name(&self) -> &'static str;

    /// `(ε, δ)`-DP approximate minimizer of `Σᵢ ℓ(θ; zᵢ)` over `C`.
    ///
    /// # Errors
    /// Dataset-contract violations, empty datasets, unsupported losses,
    /// and DP-parameter errors.
    fn solve(
        &self,
        loss: &dyn Loss,
        data: &[DataPoint],
        set: &dyn ConvexSet,
        params: &PrivacyParams,
        rng: &mut NoiseRng,
    ) -> Result<Vec<f64>, ErmError>;
}

fn check_inputs(data: &[DataPoint], set: &dyn ConvexSet) -> Result<(), ErmError> {
    if data.is_empty() {
        return Err(ErmError::EmptyDataset);
    }
    validate_dataset(data, set.dim())
}

/// Noisy projected gradient descent (Bassily et al.-style).
///
/// Runs `iters` full-gradient steps; each step's gradient is perturbed
/// with Gaussian noise calibrated to sensitivity `2L_ℓ` at the
/// per-iteration budget given by advanced composition. The procedure is
/// exactly `NOISYPROJGRAD` of Appendix B with the privacy noise playing
/// the role of the `α`-bounded oracle error.
#[derive(Debug, Clone, Copy)]
pub struct NoisyGdSolver {
    /// Iteration count (default 64 — see DESIGN.md decision 5; the
    /// `√d`-shaped risk is insensitive to this once `≳ 50` at experiment
    /// scales).
    pub iters: usize,
    /// Confidence split used to convert the noise scale into the `α` of
    /// Proposition B.1 (default 0.05).
    pub beta: f64,
}

impl Default for NoisyGdSolver {
    fn default() -> Self {
        NoisyGdSolver { iters: 64, beta: 0.05 }
    }
}

impl PrivateBatchSolver for NoisyGdSolver {
    fn name(&self) -> &'static str {
        "noisy-gd"
    }

    fn solve(
        &self,
        loss: &dyn Loss,
        data: &[DataPoint],
        set: &dyn ConvexSet,
        params: &PrivacyParams,
        rng: &mut NoiseRng,
    ) -> Result<Vec<f64>, ErmError> {
        check_inputs(data, set)?;
        let d = set.dim();
        let diam = set.diameter();
        let per_iter = composition::calibrate_advanced(params, self.iters)?;
        let sensitivity = 2.0 * loss.lipschitz(diam);
        let sigma = mechanisms::gaussian_sigma(sensitivity, &per_iter)?;
        // α of Proposition B.1: w.h.p. bound on each noise vector's norm,
        // union-bounded across iterations.
        let alpha = mechanisms::gaussian_norm_bound(d, sigma, self.beta / self.iters as f64);
        let obj = ErmObjective::new(loss, data, d);
        let cfg = NoisyPgdConfig { iters: self.iters, alpha, lipschitz: obj.lipschitz(diam) };
        let rng_cell = RefCell::new(rng);
        let theta = noisy_projected_gradient(
            |t| {
                let mut g = obj.gradient(t);
                let noise = rng_cell.borrow_mut().gaussian_vec(d, sigma);
                vector::axpy(1.0, &noise, &mut g);
                g
            },
            set,
            &cfg,
            &vec![0.0; d],
        );
        Ok(theta)
    }
}

/// Output perturbation for `ν`-strongly convex losses.
///
/// The argmin of a `νn`-strongly convex sum objective moves by at most
/// `2L_ℓ/(νn)` under a one-point replacement, so a single Gaussian
/// perturbation at that sensitivity (followed by re-projection onto `C`,
/// pure post-processing) is `(ε, δ)`-DP.
#[derive(Debug, Clone, Copy)]
pub struct OutputPerturbationSolver {
    /// Iterations for the inner exact solve (default 4000).
    pub exact_iters: usize,
}

impl Default for OutputPerturbationSolver {
    fn default() -> Self {
        OutputPerturbationSolver { exact_iters: 4000 }
    }
}

impl PrivateBatchSolver for OutputPerturbationSolver {
    fn name(&self) -> &'static str {
        "output-perturbation"
    }

    fn solve(
        &self,
        loss: &dyn Loss,
        data: &[DataPoint],
        set: &dyn ConvexSet,
        params: &PrivacyParams,
        rng: &mut NoiseRng,
    ) -> Result<Vec<f64>, ErmError> {
        check_inputs(data, set)?;
        let nu = loss.strong_convexity();
        if nu <= 0.0 {
            return Err(ErmError::UnsupportedLoss {
                solver: "output-perturbation",
                missing: "strong convexity (wrap the loss in Regularized)",
            });
        }
        let mut theta = solve_exact(loss, data, set, self.exact_iters)?;
        let sensitivity = 2.0 * loss.lipschitz(set.diameter()) / (nu * data.len() as f64);
        mechanisms::gaussian_mechanism(&mut theta, sensitivity, params, rng)?;
        Ok(set.project(&theta))
    }
}

/// Private Frank–Wolfe (Talwar et al.-style): per-iteration Gaussian
/// gradient perturbation, then the linear maximization oracle over `C`.
/// Projection-free, so all iterates are feasible; the risk bound scales
/// with `w(C)·√C_ℓ` rather than `√d`.
#[derive(Debug, Clone, Copy)]
pub struct PrivateFrankWolfeSolver {
    /// Iteration count (default 64).
    pub iters: usize,
}

impl Default for PrivateFrankWolfeSolver {
    fn default() -> Self {
        PrivateFrankWolfeSolver { iters: 64 }
    }
}

impl PrivateBatchSolver for PrivateFrankWolfeSolver {
    fn name(&self) -> &'static str {
        "private-frank-wolfe"
    }

    fn solve(
        &self,
        loss: &dyn Loss,
        data: &[DataPoint],
        set: &dyn ConvexSet,
        params: &PrivacyParams,
        rng: &mut NoiseRng,
    ) -> Result<Vec<f64>, ErmError> {
        check_inputs(data, set)?;
        let d = set.dim();
        let diam = set.diameter();
        let per_iter = composition::calibrate_advanced(params, self.iters)?;
        let sensitivity = 2.0 * loss.lipschitz(diam);
        let sigma = mechanisms::gaussian_sigma(sensitivity, &per_iter)?;
        let obj = ErmObjective::new(loss, data, d);
        let mut theta = set.project(&vec![0.0; d]);
        for k in 0..self.iters {
            let mut g = obj.gradient(&theta);
            let noise = rng.gaussian_vec(d, sigma);
            vector::axpy(1.0, &noise, &mut g);
            let neg: Vec<f64> = g.iter().map(|v| -v).collect();
            let s = set.support(&neg);
            let gamma = 2.0 / (k as f64 + 2.0);
            for (t, si) in theta.iter_mut().zip(&s) {
                *t += gamma * (si - *t);
            }
        }
        Ok(theta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::losses::{Regularized, SquaredLoss};
    use pir_geometry::{L1Ball, L2Ball, WidthSet};

    /// A well-conditioned regression batch: y = 0.5·x₀ + noise-free.
    fn batch(n: usize) -> Vec<DataPoint> {
        let mut rng = NoiseRng::seed_from_u64(42);
        (0..n)
            .map(|_| {
                let x = vector::scale(&rng.unit_sphere(3), 0.9);
                let y = 0.5 * x[0];
                DataPoint::new(x, y)
            })
            .collect()
    }

    fn excess_risk(data: &[DataPoint], set: &dyn ConvexSet, theta: &[f64]) -> f64 {
        let obj = ErmObjective::new(&SquaredLoss, data, set.dim());
        let exact = solve_exact(&SquaredLoss, data, set, 4000).unwrap();
        obj.value(theta) - obj.value(&exact)
    }

    #[test]
    fn noisy_gd_converges_at_generous_epsilon() {
        let data = batch(200);
        let set = L2Ball::unit(3);
        let params = PrivacyParams::approx(100.0, 1e-5).unwrap();
        let mut rng = NoiseRng::seed_from_u64(1);
        let solver = NoisyGdSolver { iters: 256, beta: 0.05 };
        let theta = solver.solve(&SquaredLoss, &data, &set, &params, &mut rng).unwrap();
        let ex = excess_risk(&data, &set, &theta);
        // The Prop. B.1 step size is conservative, so we check progress
        // against both the trivial output θ = 0 and a loose absolute bar
        // (the bound itself is ≫ this at n = 200).
        let obj = ErmObjective::new(&SquaredLoss, &data, 3);
        assert!(obj.value(&theta) < obj.value(&[0.0, 0.0, 0.0]), "no progress over zero");
        assert!(ex < 5.0, "excess {ex}");
        assert!(vector::norm2(&theta) <= 1.0 + 1e-9);
    }

    #[test]
    fn noisy_gd_risk_decreases_with_epsilon() {
        let data = batch(300);
        let set = L2Ball::unit(3);
        let solver = NoisyGdSolver::default();
        let mut risks = Vec::new();
        for eps in [0.2, 2.0, 200.0] {
            let params = PrivacyParams::approx(eps, 1e-5).unwrap();
            // Median of several seeds to suppress noise in the comparison.
            let mut per_seed: Vec<f64> = (0..5)
                .map(|s| {
                    let mut rng = NoiseRng::seed_from_u64(100 + s);
                    let theta = solver.solve(&SquaredLoss, &data, &set, &params, &mut rng).unwrap();
                    excess_risk(&data, &set, &theta)
                })
                .collect();
            per_seed.sort_by(|a, b| a.partial_cmp(b).unwrap());
            risks.push(per_seed[2]);
        }
        assert!(risks[0] > risks[2], "risk at ε=0.2 should exceed ε=200: {risks:?}");
    }

    #[test]
    fn output_perturbation_requires_strong_convexity() {
        let data = batch(50);
        let set = L2Ball::unit(3);
        let params = PrivacyParams::approx(1.0, 1e-5).unwrap();
        let mut rng = NoiseRng::seed_from_u64(2);
        assert!(matches!(
            OutputPerturbationSolver::default().solve(&SquaredLoss, &data, &set, &params, &mut rng),
            Err(ErmError::UnsupportedLoss { .. })
        ));
        let reg = Regularized::new(SquaredLoss, 0.5);
        let theta = OutputPerturbationSolver::default()
            .solve(&reg, &data, &set, &params, &mut rng)
            .unwrap();
        assert!(vector::norm2(&theta) <= 1.0 + 1e-9);
    }

    #[test]
    fn output_perturbation_sensitivity_shrinks_with_n() {
        // More data ⇒ less noise ⇒ closer to the exact solution.
        let reg = Regularized::new(SquaredLoss, 0.5);
        let set = L2Ball::unit(3);
        let params = PrivacyParams::approx(1.0, 1e-5).unwrap();
        let dist_for = |n: usize| {
            let data = batch(n);
            let exact = solve_exact(&reg, &data, &set, 4000).unwrap();
            let mut total = 0.0;
            for s in 0..8 {
                let mut rng = NoiseRng::seed_from_u64(s);
                let theta = OutputPerturbationSolver::default()
                    .solve(&reg, &data, &set, &params, &mut rng)
                    .unwrap();
                total += vector::distance(&theta, &exact);
            }
            total / 8.0
        };
        let d_small = dist_for(30);
        let d_large = dist_for(400);
        assert!(d_large < d_small, "avg dist: n=30 {d_small} vs n=400 {d_large}");
    }

    #[test]
    fn private_frank_wolfe_stays_feasible_on_l1() {
        let data = batch(150);
        let set = L1Ball::unit(3);
        let params = PrivacyParams::approx(2.0, 1e-5).unwrap();
        let mut rng = NoiseRng::seed_from_u64(3);
        let theta = PrivateFrankWolfeSolver::default()
            .solve(&SquaredLoss, &data, &set, &params, &mut rng)
            .unwrap();
        assert!(vector::norm1(&theta) <= 1.0 + 1e-9);
        // Sanity: at generous ε it should track the signal direction e₀.
        let params_loose = PrivacyParams::approx(500.0, 1e-5).unwrap();
        let theta2 = PrivateFrankWolfeSolver { iters: 256 }
            .solve(&SquaredLoss, &data, &set, &params_loose, &mut rng)
            .unwrap();
        assert!(theta2[0] > 0.2, "{theta2:?}");
    }

    #[test]
    fn solvers_reject_bad_data() {
        let set = L2Ball::unit(2);
        let params = PrivacyParams::approx(1.0, 1e-5).unwrap();
        let mut rng = NoiseRng::seed_from_u64(4);
        let bad = vec![DataPoint::new(vec![3.0, 0.0], 0.0)];
        let solvers: [&dyn PrivateBatchSolver; 3] = [
            &NoisyGdSolver::default(),
            &OutputPerturbationSolver::default(),
            &PrivateFrankWolfeSolver::default(),
        ];
        for solver in solvers {
            assert!(matches!(
                solver.solve(&SquaredLoss, &bad, &set, &params, &mut rng),
                Err(ErmError::InvalidDataPoint { .. })
            ));
            assert!(matches!(
                solver.solve(&SquaredLoss, &[], &set, &params, &mut rng),
                Err(ErmError::EmptyDataset)
            ));
        }
    }

    #[test]
    fn frank_wolfe_width_advantage_dimension_scaling() {
        // Shape check at small scale: on an L1 ball in growing d, private
        // FW risk grows slowly (width ~ √log d), while noisy GD injects
        // √d-size noise. We only verify FW doesn't blow up with d here;
        // the full comparison is experiment E6.
        let params = PrivacyParams::approx(1.0, 1e-5).unwrap();
        let mut risks = Vec::new();
        for d in [4usize, 32] {
            let mut rng = NoiseRng::seed_from_u64(7);
            let mut data_rng = NoiseRng::seed_from_u64(8);
            let data: Vec<DataPoint> = (0..200)
                .map(|_| {
                    let x = vector::scale(&data_rng.unit_sphere(d), 0.9);
                    DataPoint::new(x.clone(), 0.5 * x[0])
                })
                .collect();
            let set = L1Ball::unit(d);
            let theta = PrivateFrankWolfeSolver::default()
                .solve(&SquaredLoss, &data, &set, &params, &mut rng)
                .unwrap();
            let obj = ErmObjective::new(&SquaredLoss, &data, d);
            let exact = solve_exact(&SquaredLoss, &data, &set, 3000).unwrap();
            risks.push(obj.value(&theta) - obj.value(&exact));
            assert!(set.diameter() <= 1.0 + 1e-12);
        }
        // 8× dimension growth should not cause ~√8× risk growth.
        assert!(risks[1] < risks[0] * 4.0 + 5.0, "risks {risks:?}");
    }
}
