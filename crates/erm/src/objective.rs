//! The batch ERM objective `J(θ; z_1..z_n) = Σᵢ ℓ(θ; zᵢ)` as a
//! [`pir_optim::Objective`].

use crate::data::DataPoint;
use crate::losses::Loss;
use pir_linalg::vector;
use pir_optim::Objective;

/// Sum-of-losses objective over a borrowed dataset (equation (1) of the
/// paper, unregularized form — regularization enters via
/// [`crate::Regularized`]).
#[derive(Debug)]
pub struct ErmObjective<'a> {
    loss: &'a dyn Loss,
    data: &'a [DataPoint],
    dim: usize,
}

impl<'a> ErmObjective<'a> {
    /// New objective over `data` in dimension `dim`.
    pub fn new(loss: &'a dyn Loss, data: &'a [DataPoint], dim: usize) -> Self {
        ErmObjective { loss, data, dim }
    }

    /// Number of datapoints `n`.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Lipschitz constant of the *sum* objective over a set of diameter
    /// `diameter`: `n · L_ℓ`.
    pub fn lipschitz(&self, diameter: f64) -> f64 {
        self.data.len() as f64 * self.loss.lipschitz(diameter)
    }
}

impl Objective for ErmObjective<'_> {
    fn dim(&self) -> usize {
        self.dim
    }

    fn value(&self, theta: &[f64]) -> f64 {
        self.data.iter().map(|z| self.loss.value(theta, &z.x, z.y)).sum()
    }

    fn gradient(&self, theta: &[f64]) -> Vec<f64> {
        let mut g = vec![0.0; self.dim];
        for z in self.data {
            let gz = self.loss.gradient(theta, &z.x, z.y);
            vector::axpy(1.0, &gz, &mut g);
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::losses::SquaredLoss;

    #[test]
    fn sums_over_points() {
        let data = vec![DataPoint::new(vec![1.0, 0.0], 1.0), DataPoint::new(vec![0.0, 1.0], -1.0)];
        let obj = ErmObjective::new(&SquaredLoss, &data, 2);
        assert_eq!(obj.len(), 2);
        // At θ = 0: J = 1 + 1 = 2.
        assert_eq!(obj.value(&[0.0, 0.0]), 2.0);
        // Gradient: −2(1)·e₁ − 2(−1)·e₂ = (−2, 2).
        assert_eq!(obj.gradient(&[0.0, 0.0]), vec![-2.0, 2.0]);
        assert_eq!(obj.lipschitz(1.0), 2.0 * (2.0 * 2.0));
    }

    #[test]
    fn empty_dataset_is_the_zero_objective() {
        let data: Vec<DataPoint> = vec![];
        let obj = ErmObjective::new(&SquaredLoss, &data, 3);
        assert!(obj.is_empty());
        assert_eq!(obj.value(&[1.0, 1.0, 1.0]), 0.0);
        assert_eq!(obj.gradient(&[1.0, 1.0, 1.0]), vec![0.0; 3]);
    }
}
