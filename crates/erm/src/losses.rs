//! Convex per-sample loss functions `ℓ(θ; (x, y))`.
//!
//! All constants below assume the §2 normalization `‖x‖₂ ≤ 1`, `|y| ≤ 1`
//! and are stated as functions of the constraint diameter `‖C‖`
//! (Definition 2) where they depend on it.

use pir_linalg::vector;

/// A convex per-sample loss with the analytic constants the private
/// solvers calibrate their noise to.
pub trait Loss: Send + Sync + std::fmt::Debug {
    /// Loss value `ℓ(θ; (x, y))`.
    fn value(&self, theta: &[f64], x: &[f64], y: f64) -> f64;

    /// A (sub)gradient `∇_θ ℓ(θ; (x, y))`.
    fn gradient(&self, theta: &[f64], x: &[f64], y: f64) -> Vec<f64>;

    /// Lipschitz constant of `ℓ(·; z)` over a constraint set of diameter
    /// `diameter` (Definition 8), under the domain normalization.
    fn lipschitz(&self, diameter: f64) -> f64;

    /// Strong-convexity modulus `ν` (Definition 9); 0 for merely convex.
    fn strong_convexity(&self) -> f64 {
        0.0
    }

    /// Curvature constant `C_ℓ` over a set of diameter `diameter` (§3 of
    /// the paper; enters the Talwar et al. Frank–Wolfe bound).
    fn curvature(&self, diameter: f64) -> f64;

    /// Short human-readable name (for experiment tables).
    fn name(&self) -> &'static str;
}

/// Squared loss `ℓ(θ; z) = (y − ⟨x, θ⟩)²` — the paper's linear-regression
/// loss (`ℓ`/`L` notation of §2).
#[derive(Debug, Clone, Copy, Default)]
pub struct SquaredLoss;

impl Loss for SquaredLoss {
    fn value(&self, theta: &[f64], x: &[f64], y: f64) -> f64 {
        let r = y - vector::dot(x, theta);
        r * r
    }

    fn gradient(&self, theta: &[f64], x: &[f64], y: f64) -> Vec<f64> {
        let r = y - vector::dot(x, theta);
        vector::scale(x, -2.0 * r)
    }

    /// `‖∇ℓ‖ = 2|y − ⟨x,θ⟩|·‖x‖ ≤ 2(1 + ‖C‖)`.
    fn lipschitz(&self, diameter: f64) -> f64 {
        2.0 * (1.0 + diameter)
    }

    /// `C_ℓ ≤ ‖C‖²` for `‖x‖ ≤ 1, |y| ≤ 1` (§3, citing Clarkson `[10]`).
    fn curvature(&self, diameter: f64) -> f64 {
        diameter * diameter
    }

    fn name(&self) -> &'static str {
        "squared"
    }
}

/// Logistic loss `ℓ(θ; z) = ln(1 + exp(−y⟨x, θ⟩))` (§1, MLE for logistic
/// regression).
#[derive(Debug, Clone, Copy, Default)]
pub struct LogisticLoss;

impl Loss for LogisticLoss {
    fn value(&self, theta: &[f64], x: &[f64], y: f64) -> f64 {
        let m = -y * vector::dot(x, theta);
        // Numerically stable ln(1 + e^m).
        if m > 0.0 {
            m + (1.0 + (-m).exp()).ln()
        } else {
            (1.0 + m.exp()).ln()
        }
    }

    fn gradient(&self, theta: &[f64], x: &[f64], y: f64) -> Vec<f64> {
        let m = -y * vector::dot(x, theta);
        let sigma = 1.0 / (1.0 + (-m).exp()); // σ(m)
        vector::scale(x, -y * sigma)
    }

    /// `‖∇ℓ‖ ≤ |y|·‖x‖ ≤ 1` independent of `C`.
    fn lipschitz(&self, _diameter: f64) -> f64 {
        1.0
    }

    /// Second derivative along any direction is at most `¼‖x‖² ≤ ¼`, so
    /// `C_ℓ ≤ ‖C‖²/2` (quadratic upper model over a set of diameter `‖C‖`,
    /// path length `2‖C‖`).
    fn curvature(&self, diameter: f64) -> f64 {
        0.5 * diameter * diameter
    }

    fn name(&self) -> &'static str {
        "logistic"
    }
}

/// Smoothed hinge (Huberized SVM) loss: the paper's `hinge(a) = 1 − a` for
/// `a ≤ 1` smoothed on `[1 − mu, 1]` so gradient methods apply.
#[derive(Debug, Clone, Copy)]
pub struct SmoothedHingeLoss {
    /// Smoothing window width `mu ∈ (0, 1]`.
    pub mu: f64,
}

impl SmoothedHingeLoss {
    /// New smoothed hinge.
    ///
    /// # Panics
    /// Panics unless `0 < mu ≤ 1`.
    pub fn new(mu: f64) -> Self {
        assert!(mu > 0.0 && mu <= 1.0, "smoothing width must lie in (0,1]");
        SmoothedHingeLoss { mu }
    }
}

impl Loss for SmoothedHingeLoss {
    fn value(&self, theta: &[f64], x: &[f64], y: f64) -> f64 {
        let a = y * vector::dot(x, theta);
        if a >= 1.0 {
            0.0
        } else if a <= 1.0 - self.mu {
            1.0 - a - self.mu / 2.0
        } else {
            (1.0 - a) * (1.0 - a) / (2.0 * self.mu)
        }
    }

    fn gradient(&self, theta: &[f64], x: &[f64], y: f64) -> Vec<f64> {
        let a = y * vector::dot(x, theta);
        let slope = if a >= 1.0 {
            0.0
        } else if a <= 1.0 - self.mu {
            -1.0
        } else {
            -(1.0 - a) / self.mu
        };
        vector::scale(x, slope * y)
    }

    fn lipschitz(&self, _diameter: f64) -> f64 {
        1.0
    }

    fn curvature(&self, diameter: f64) -> f64 {
        // Hessian bounded by 1/mu inside the smoothing window.
        2.0 * diameter * diameter / self.mu
    }

    fn name(&self) -> &'static str {
        "smoothed-hinge"
    }
}

/// Huber loss on the residual `r = y − ⟨x, θ⟩`: quadratic within `±delta`,
/// linear outside — robust regression.
#[derive(Debug, Clone, Copy)]
pub struct HuberLoss {
    /// Transition point `delta > 0`.
    pub delta: f64,
}

impl HuberLoss {
    /// New Huber loss.
    ///
    /// # Panics
    /// Panics unless `delta > 0`.
    pub fn new(delta: f64) -> Self {
        assert!(delta > 0.0, "Huber delta must be positive");
        HuberLoss { delta }
    }
}

impl Loss for HuberLoss {
    fn value(&self, theta: &[f64], x: &[f64], y: f64) -> f64 {
        let r = y - vector::dot(x, theta);
        if r.abs() <= self.delta {
            0.5 * r * r
        } else {
            self.delta * (r.abs() - 0.5 * self.delta)
        }
    }

    fn gradient(&self, theta: &[f64], x: &[f64], y: f64) -> Vec<f64> {
        let r = y - vector::dot(x, theta);
        let slope = if r.abs() <= self.delta { -r } else { -self.delta * r.signum() };
        vector::scale(x, slope)
    }

    fn lipschitz(&self, diameter: f64) -> f64 {
        self.delta.min(1.0 + diameter)
    }

    fn curvature(&self, diameter: f64) -> f64 {
        2.0 * diameter * diameter
    }

    fn name(&self) -> &'static str {
        "huber"
    }
}

/// Per-sample Tikhonov regularization: `ℓ(θ; z) + (λ/2)‖θ‖²` — the
/// footnote-1 trick that turns a regularized ERM into the sum form (1),
/// and the standard way to obtain the strong convexity Theorem 3.1(2)
/// requires.
#[derive(Debug, Clone)]
pub struct Regularized<L: Loss> {
    base: L,
    lambda: f64,
}

impl<L: Loss> Regularized<L> {
    /// Wrap `base` with ridge weight `lambda > 0`.
    ///
    /// # Panics
    /// Panics unless `lambda > 0`.
    pub fn new(base: L, lambda: f64) -> Self {
        assert!(lambda > 0.0, "regularization weight must be positive");
        Regularized { base, lambda }
    }

    /// The ridge weight `λ`.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }
}

impl<L: Loss> Loss for Regularized<L> {
    fn value(&self, theta: &[f64], x: &[f64], y: f64) -> f64 {
        self.base.value(theta, x, y) + 0.5 * self.lambda * vector::norm2_sq(theta)
    }

    fn gradient(&self, theta: &[f64], x: &[f64], y: f64) -> Vec<f64> {
        let mut g = self.base.gradient(theta, x, y);
        vector::axpy(self.lambda, theta, &mut g);
        g
    }

    fn lipschitz(&self, diameter: f64) -> f64 {
        self.base.lipschitz(diameter) + self.lambda * diameter
    }

    fn strong_convexity(&self) -> f64 {
        self.lambda
    }

    fn curvature(&self, diameter: f64) -> f64 {
        self.base.curvature(diameter) + 2.0 * self.lambda * diameter * diameter
    }

    fn name(&self) -> &'static str {
        "regularized"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn numerical_gradient(loss: &dyn Loss, theta: &[f64], x: &[f64], y: f64, h: f64) -> Vec<f64> {
        let mut g = vec![0.0; theta.len()];
        for i in 0..theta.len() {
            let mut tp = theta.to_vec();
            let mut tm = theta.to_vec();
            tp[i] += h;
            tm[i] -= h;
            g[i] = (loss.value(&tp, x, y) - loss.value(&tm, x, y)) / (2.0 * h);
        }
        g
    }

    fn check_gradient(loss: &dyn Loss) {
        let theta = [0.3, -0.2, 0.1];
        let x = [0.5, 0.5, -0.1];
        for y in [-1.0, 0.2, 1.0] {
            let g = loss.gradient(&theta, &x, y);
            let gn = numerical_gradient(loss, &theta, &x, y, 1e-6);
            for (a, b) in g.iter().zip(&gn) {
                assert!((a - b).abs() < 1e-5, "{}: grad {a} vs fd {b}", loss.name());
            }
        }
    }

    #[test]
    fn gradients_match_finite_differences() {
        check_gradient(&SquaredLoss);
        check_gradient(&LogisticLoss);
        check_gradient(&SmoothedHingeLoss::new(0.5));
        check_gradient(&HuberLoss::new(0.3));
        check_gradient(&Regularized::new(SquaredLoss, 0.7));
    }

    #[test]
    fn squared_loss_values() {
        let l = SquaredLoss;
        assert_eq!(l.value(&[0.0, 0.0], &[1.0, 0.0], 1.0), 1.0);
        assert_eq!(l.value(&[1.0, 0.0], &[1.0, 0.0], 1.0), 0.0);
    }

    #[test]
    fn logistic_loss_is_stable_for_large_margins() {
        let l = LogisticLoss;
        // Huge positive margin: loss → 0 without overflow.
        let v = l.value(&[100.0], &[1.0], 1.0);
        assert!((0.0..1e-20).contains(&v));
        let v2 = l.value(&[-100.0], &[1.0], 1.0);
        assert!((v2 - 100.0).abs() < 1e-9);
    }

    #[test]
    fn lipschitz_bounds_hold_empirically() {
        let losses: Vec<Box<dyn Loss>> = vec![
            Box::new(SquaredLoss),
            Box::new(LogisticLoss),
            Box::new(SmoothedHingeLoss::new(0.3)),
            Box::new(HuberLoss::new(0.5)),
        ];
        let diameter = 1.0;
        for loss in &losses {
            let bound = loss.lipschitz(diameter);
            for s in 0..50 {
                let t = (s as f64) / 50.0 * 2.0 - 1.0;
                let theta = [t * 0.7, t * 0.3];
                let x = [0.8, -0.6];
                let y = if s % 2 == 0 { 1.0 } else { -0.5 };
                let g = loss.gradient(&theta, &x, y);
                assert!(
                    vector::norm2(&g) <= bound + 1e-9,
                    "{}: gradient norm exceeds Lipschitz bound",
                    loss.name()
                );
            }
        }
    }

    #[test]
    fn hinge_regions() {
        let l = SmoothedHingeLoss::new(0.5);
        // Well-classified: zero loss, zero gradient.
        assert_eq!(l.value(&[2.0], &[1.0], 1.0), 0.0);
        assert_eq!(l.gradient(&[2.0], &[1.0], 1.0), vec![0.0]);
        // Deep in the linear region.
        let v = l.value(&[-1.0], &[1.0], 1.0);
        assert!((v - (2.0 - 0.25)).abs() < 1e-12);
    }

    #[test]
    fn regularized_adds_strong_convexity() {
        let plain = SquaredLoss;
        let reg = Regularized::new(SquaredLoss, 0.25);
        assert_eq!(plain.strong_convexity(), 0.0);
        assert_eq!(reg.strong_convexity(), 0.25);
        assert!(reg.value(&[1.0], &[0.5], 0.0) > plain.value(&[1.0], &[0.5], 0.0));
    }

    #[test]
    fn huber_matches_quadratic_inside() {
        let l = HuberLoss::new(1.0);
        let v = l.value(&[0.0], &[1.0], 0.5);
        assert!((v - 0.125).abs() < 1e-12);
    }
}
