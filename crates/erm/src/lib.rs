//! # pir-erm
//!
//! The empirical-risk-minimization layer: convex loss functions, the batch
//! objective `J(θ; z_1..z_n) = Σᵢ ℓ(θ; zᵢ)` (equation (1) of the paper),
//! an exact (non-private) reference solver, and three differentially
//! private *batch* ERM solvers that plug into the generic
//! batch→incremental transformation of §3:
//!
//! - [`NoisyGdSolver`] — noisy projected gradient descent in the style of
//!   Bassily–Smith–Thakurta `[2]`: achieves the `≈ √d·L‖C‖/(nε)`-shaped
//!   average excess risk that Theorem 3.1(1) consumes.
//! - [`OutputPerturbationSolver`] — for `ν`-strongly convex losses
//!   (Chaudhuri et al.): solve exactly, perturb once with sensitivity
//!   `2L/(νn)`, re-project. Used by Theorem 3.1(2).
//! - [`PrivateFrankWolfeSolver`] — noisy conditional gradient in the style
//!   of Talwar–Thakurta–Zhang `[46]`: risk scales with the Gaussian width
//!   of `C` instead of `√d`. Used by Theorem 3.1(3).
//!
//! All solvers enforce the paper's domain normalization `‖x‖₂ ≤ 1`,
//! `|y| ≤ 1` (§2, "Notation and Data Normalization") — sensitivities are
//! calibrated under exactly that contract.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod data;
mod error;
pub mod exact;
pub mod losses;
pub mod objective;
pub mod private;

pub use data::{validate_dataset, DataPoint};
pub use error::ErmError;
pub use exact::solve_exact;
pub use losses::{HuberLoss, LogisticLoss, Loss, Regularized, SmoothedHingeLoss, SquaredLoss};
pub use objective::ErmObjective;
pub use private::{
    NoisyGdSolver, OutputPerturbationSolver, PrivateBatchSolver, PrivateFrankWolfeSolver,
};

/// Convenient result alias.
pub type Result<T> = std::result::Result<T, ErmError>;
