//! Labeled data points and the domain-normalization contract.

use crate::error::ErmError;
use pir_linalg::vector;

/// One covariate–response pair `z = (x, y) ∈ X × Y` with `X ⊂ R^d`,
/// `‖X‖ ≤ 1` and `Y ⊂ R`, `|Y| ≤ 1` (the paper's §2 normalization).
#[derive(Debug, Clone, PartialEq)]
pub struct DataPoint {
    /// Covariates `x`.
    pub x: Vec<f64>,
    /// Response / label `y`.
    pub y: f64,
}

impl DataPoint {
    /// New point (unvalidated; see [`DataPoint::validate`]).
    pub fn new(x: Vec<f64>, y: f64) -> Self {
        DataPoint { x, y }
    }

    /// Check the normalization contract for dimension `d`.
    ///
    /// # Errors
    /// [`ErmError::InvalidDataPoint`] describing the violated constraint.
    pub fn validate(&self, d: usize) -> Result<(), ErmError> {
        if self.x.len() != d {
            return Err(ErmError::InvalidDataPoint {
                reason: format!("covariate dimension {} != {d}", self.x.len()),
            });
        }
        if !vector::is_finite(&self.x) || !self.y.is_finite() {
            return Err(ErmError::InvalidDataPoint { reason: "non-finite entries".to_string() });
        }
        let n = vector::norm2(&self.x);
        if n > 1.0 + 1e-9 {
            return Err(ErmError::InvalidDataPoint {
                reason: format!("covariate norm {n} exceeds 1 (normalize inputs)"),
            });
        }
        if self.y.abs() > 1.0 + 1e-9 {
            return Err(ErmError::InvalidDataPoint {
                reason: format!("response magnitude {} exceeds 1 (normalize labels)", self.y),
            });
        }
        Ok(())
    }
}

/// Validate an entire dataset against dimension `d`.
///
/// # Errors
/// The first violation found, annotated with its index.
pub fn validate_dataset(data: &[DataPoint], d: usize) -> Result<(), ErmError> {
    for (i, z) in data.iter().enumerate() {
        z.validate(d).map_err(|e| match e {
            ErmError::InvalidDataPoint { reason } => {
                ErmError::InvalidDataPoint { reason: format!("point {i}: {reason}") }
            }
            other => other,
        })?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_normalized_rejects_violations() {
        assert!(DataPoint::new(vec![0.6, 0.8], 1.0).validate(2).is_ok());
        assert!(DataPoint::new(vec![0.6, 0.8], 1.5).validate(2).is_err());
        assert!(DataPoint::new(vec![1.0, 1.0], 0.0).validate(2).is_err());
        assert!(DataPoint::new(vec![0.5], 0.0).validate(2).is_err());
        assert!(DataPoint::new(vec![f64::NAN, 0.0], 0.0).validate(2).is_err());
    }

    #[test]
    fn dataset_validation_reports_index() {
        let data = vec![DataPoint::new(vec![0.1, 0.1], 0.5), DataPoint::new(vec![2.0, 0.0], 0.0)];
        let err = validate_dataset(&data, 2).unwrap_err();
        assert!(err.to_string().contains("point 1"), "{err}");
    }
}
