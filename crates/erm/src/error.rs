use pir_dp::DpError;
use std::fmt;

/// Errors produced by the ERM layer.
#[derive(Debug, Clone, PartialEq)]
pub enum ErmError {
    /// A data point violated the domain normalization contract.
    InvalidDataPoint {
        /// What went wrong.
        reason: String,
    },
    /// A solver was invoked with an empty dataset.
    EmptyDataset,
    /// The loss lacks a property the solver needs (e.g. output perturbation
    /// on a loss that is not strongly convex).
    UnsupportedLoss {
        /// Which solver complained.
        solver: &'static str,
        /// Which property is missing.
        missing: &'static str,
    },
    /// An underlying DP-parameter error.
    Dp(DpError),
    /// An underlying linear-algebra error.
    Linalg(pir_linalg::LinalgError),
}

impl fmt::Display for ErmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ErmError::InvalidDataPoint { reason } => write!(f, "invalid data point: {reason}"),
            ErmError::EmptyDataset => write!(f, "cannot minimize over an empty dataset"),
            ErmError::UnsupportedLoss { solver, missing } => {
                write!(f, "{solver} requires a loss with {missing}")
            }
            ErmError::Dp(e) => write!(f, "{e}"),
            ErmError::Linalg(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ErmError {}

impl From<DpError> for ErmError {
    fn from(e: DpError) -> Self {
        ErmError::Dp(e)
    }
}

impl From<pir_linalg::LinalgError> for ErmError {
    fn from(e: pir_linalg::LinalgError) -> Self {
        ErmError::Linalg(e)
    }
}
