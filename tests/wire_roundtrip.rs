//! Wire-protocol round-trip and hostile-bytes properties.
//!
//! Two halves of one contract: every encodable [`Command`] and [`Reply`]
//! frame survives encode→decode→encode **bit-for-bit** (the property the
//! write-ahead log leans on — its records are wire frames), and
//! arbitrary byte mutations, truncations, and extensions of valid frames
//! decode to a clean [`WireError`] or a valid frame — the decoder never
//! panics, whatever the bytes claim.

use pir_engine::wire::{self, WireError};
use private_incremental_regression::prelude::*;
use proptest::prelude::*;

/// SplitMix64 step: one deterministic generator per property case.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Exactly-representable value in roughly `[-8, 8]`: float round trips
/// must be bit-level, so generate dyadics (no decimal noise).
fn dyadic(s: &mut u64) -> f64 {
    ((mix(s) % 1025) as f64 - 512.0) / 64.0
}

fn gen_point(s: &mut u64, d: usize) -> DataPoint {
    DataPoint::new((0..d).map(|_| dyadic(s)).collect(), dyadic(s))
}

fn gen_set(s: &mut u64) -> SetSpec {
    let dim = 1 + (mix(s) % 6) as usize;
    let scale = 0.25 + (mix(s) % 8) as f64 / 4.0;
    match mix(s) % 4 {
        0 => SetSpec::L2Ball { dim, radius: scale },
        1 => SetSpec::L1Ball { dim, radius: scale },
        2 => SetSpec::LinfBall { dim, radius: scale },
        _ => SetSpec::Simplex { dim, scale },
    }
}

fn gen_spec(s: &mut u64) -> MechanismSpec {
    match mix(s) % 5 {
        0 => MechanismSpec::Erm {
            set: gen_set(s),
            loss: match mix(s) % 3 {
                0 => LossSpec::Squared,
                1 => LossSpec::Logistic,
                _ => LossSpec::RegularizedSquared { lambda: dyadic(s).abs() + 0.25 },
            },
            solver: match mix(s) % 3 {
                0 => SolverSpec::NoisyGd { iters: 1 + (mix(s) % 50) as usize, beta: 0.05 },
                1 => SolverSpec::OutputPerturbation { exact_iters: 1 + (mix(s) % 50) as usize },
                _ => SolverSpec::FrankWolfe { iters: 1 + (mix(s) % 50) as usize },
            },
            tau: match mix(s) % 4 {
                0 => TauRule::Fixed(1 + (mix(s) % 9) as usize),
                1 => TauRule::Convex,
                2 => TauRule::StronglyConvex,
                _ => TauRule::LowWidth,
            },
        },
        1 => MechanismSpec::Reg1 {
            set: gen_set(s),
            config: PrivIncReg1Config {
                beta: 0.125,
                max_pgd_iters: 1 + (mix(s) % 100) as usize,
                warm_start: mix(s).is_multiple_of(2),
                ..Default::default()
            },
        },
        2 => MechanismSpec::Reg2 {
            set: gen_set(s),
            domain_width: dyadic(s).abs() + 1.0,
            config: PrivIncReg2Config {
                gamma: (mix(s).is_multiple_of(2)).then(|| dyadic(s).abs() + 0.125),
                m_override: (mix(s).is_multiple_of(2)).then(|| 1 + (mix(s) % 30) as usize),
                ..Default::default()
            },
        },
        3 => MechanismSpec::Trivial { set: gen_set(s) },
        _ => MechanismSpec::ExactOracle { set: gen_set(s) },
    }
}

fn gen_command(seed: u64) -> Command {
    let s = &mut seed.clone();
    let session_id = mix(s);
    let d = 1 + (mix(s) % 5) as usize;
    match mix(s) % 5 {
        0 => Command::Open {
            session_id,
            spec: gen_spec(s),
            t_max: 1 + (mix(s) % 256) as usize,
            params: PrivacyParams::approx(0.5 + (mix(s) % 4) as f64, 1e-6).unwrap(),
        },
        1 => Command::Observe { session_id, point: gen_point(s, d) },
        2 => Command::ObserveBatch {
            session_id,
            points: (0..(mix(s) % 6)).map(|_| gen_point(s, d)).collect(),
        },
        3 => Command::Release { session_id },
        _ => Command::Close,
    }
}

fn gen_engine_error(s: &mut u64) -> EngineError {
    match mix(s) % 9 {
        0 => EngineError::UnknownSession { id: mix(s) },
        1 => EngineError::DuplicateSession { id: mix(s) },
        2 => EngineError::InvalidConfig { reason: format!("cfg-{}", mix(s) % 100) },
        3 => EngineError::Mechanism { reason: format!("mech-{}", mix(s) % 100) },
        4 => EngineError::Budget { reason: format!("budget-{}", mix(s) % 100) },
        5 => EngineError::Backpressure {
            shard: (mix(s) % 16) as usize,
            depth: (mix(s) % 1024) as usize,
            capacity: (mix(s) % 1024) as usize,
            cost: (mix(s) % 64) as usize,
        },
        6 => EngineError::CommandTooLarge {
            shard: (mix(s) % 16) as usize,
            cost: (mix(s) % 4096) as usize,
            capacity: (mix(s) % 1024) as usize,
        },
        7 => EngineError::Closed,
        _ => EngineError::Wal { reason: format!("wal-{}", mix(s) % 100) },
    }
}

fn gen_reply(seed: u64) -> Reply {
    let s = &mut seed.clone();
    let session_id = mix(s);
    let d = 1 + (mix(s) % 5) as usize;
    match mix(s) % 5 {
        0 => Reply::Opened { session_id },
        1 => Reply::Releases {
            session_id,
            thetas: (0..(mix(s) % 4)).map(|_| (0..d).map(|_| dyadic(s)).collect()).collect(),
        },
        2 => Reply::SessionReleased {
            session_id,
            points: mix(s) % 100_000,
            epsilon_spent: dyadic(s).abs(),
            delta_spent: dyadic(s).abs() / 1e6,
        },
        3 => Reply::Closed,
        _ => Reply::Err(gen_engine_error(s)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// encode → decode → encode is the identity on frame bytes, for every
    /// command kind, spec family, and knob combination generated.
    #[test]
    fn command_frames_round_trip_bit_for_bit(seed in any::<u64>()) {
        let cmd = gen_command(seed);
        let bytes = wire::encode_command(&cmd).unwrap();
        let decoded = wire::decode_command(&bytes).unwrap();
        let re = wire::encode_command(&decoded).unwrap();
        prop_assert_eq!(&re, &bytes, "re-encode diverged for {:?}", cmd);
    }

    /// The same identity for every reply kind, including every
    /// `EngineError` wire kind.
    #[test]
    fn reply_frames_round_trip_bit_for_bit(seed in any::<u64>()) {
        let reply = gen_reply(seed);
        let bytes = wire::encode_reply(&reply).unwrap();
        let decoded = wire::decode_reply(&bytes).unwrap();
        prop_assert_eq!(&decoded, &reply);
        let re = wire::encode_reply(&decoded).unwrap();
        prop_assert_eq!(&re, &bytes);
    }

    /// Overwrite an arbitrary byte with an arbitrary value: the decoder
    /// must return a clean verdict — `Ok` (the mutation hit a
    /// value-carrying byte) or a typed `WireError` — and never panic.
    /// Whatever decodes must also re-encode.
    #[test]
    fn mutated_frames_decode_cleanly_and_never_panic(
        seed in any::<u64>(),
        raw_offset in any::<u64>(),
        value in 0u64..256,
    ) {
        let bytes = wire::encode_command(&gen_command(seed)).unwrap();
        let mut mutated = bytes.clone();
        let offset = (raw_offset % mutated.len() as u64) as usize;
        mutated[offset] = value as u8;
        // Typed rejection is one clean verdict; the other is a surviving
        // frame, which must then be a valid frame: re-encodable (the WAL
        // appends whatever it decodes).
        if let Ok(cmd) = wire::decode_command(&mutated) {
            wire::encode_command(&cmd).unwrap();
        }
        // Reply frames get the same treatment.
        let rbytes = wire::encode_reply(&gen_reply(seed ^ 0x5DEE_CE66)).unwrap();
        let mut rmut = rbytes.clone();
        let roff = (raw_offset % rmut.len() as u64) as usize;
        rmut[roff] = value as u8;
        if let Ok(reply) = wire::decode_reply(&rmut) {
            wire::encode_reply(&reply).unwrap();
        }
    }

    /// Every proper prefix of a valid frame is `Truncated` — never a
    /// panic, never a bogus success.
    #[test]
    fn truncated_frames_are_truncated_errors(seed in any::<u64>(), raw_cut in any::<u64>()) {
        let bytes = wire::encode_command(&gen_command(seed)).unwrap();
        let cut = (raw_cut % bytes.len() as u64) as usize; // strictly shorter
        match wire::decode_command(&bytes[..cut]) {
            Err(WireError::Truncated { .. }) => {}
            other => panic!("prefix of len {cut} must be Truncated, got {other:?}"),
        }
    }

    /// Bytes past the end of a frame are `TrailingBytes`: frames are
    /// exact, so a length-field lie cannot smuggle a payload suffix.
    #[test]
    fn extended_frames_are_trailing_byte_errors(
        seed in any::<u64>(),
        extra in 1usize..16,
        fill in 0u64..256,
    ) {
        let mut bytes = wire::encode_command(&gen_command(seed)).unwrap();
        bytes.extend(std::iter::repeat_n(fill as u8, extra));
        match wire::decode_command(&bytes) {
            Err(WireError::TrailingBytes { extra: got }) => {
                prop_assert_eq!(got, extra);
            }
            other => panic!("{extra} trailing bytes must be TrailingBytes, got {other:?}"),
        }
    }
}

/// The header checks fire in a fixed order on a fixed frame — one
/// deterministic anchor so the property above cannot drift.
#[test]
fn header_field_errors_are_distinct() {
    let bytes = wire::encode_command(&Command::Release { session_id: 7 }).unwrap();

    let mut m = bytes.clone();
    m[0] = b'X';
    assert!(matches!(wire::decode_command(&m), Err(WireError::BadMagic(_))));

    let mut m = bytes.clone();
    m[4] = 99;
    assert!(matches!(wire::decode_command(&m), Err(WireError::UnsupportedVersion(99))));

    let mut m = bytes.clone();
    m[5] = 0x7E;
    assert!(matches!(wire::decode_command(&m), Err(WireError::UnknownOpcode(0x7E))));

    let mut m = bytes.clone();
    m[6] = 1;
    assert!(matches!(wire::decode_command(&m), Err(WireError::NonZeroReserved(1))));

    // A length field claiming more than the cap: rejected before any
    // allocation.
    let mut m = bytes;
    m[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(matches!(wire::decode_command(&m), Err(WireError::FrameTooLarge { .. })));
}
