//! Markdown link check over the repo's documentation (CI: the docs job
//! runs this explicitly; it also rides along in tier-1 `cargo test`).
//!
//! Every relative link target in the root `*.md` files and `docs/*.md`
//! must resolve to a file or directory in the repository, so the docs
//! cannot silently rot as files move. External (`http(s)://`,
//! `mailto:`) and intra-page (`#…`) links are out of scope — no network
//! in this environment.

use std::path::{Path, PathBuf};

/// The markdown files under check: `*.md` at the repo root and in
/// `docs/`.
fn markdown_files(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    for dir in [root.to_path_buf(), root.join("docs")] {
        let entries = std::fs::read_dir(&dir)
            .unwrap_or_else(|e| panic!("cannot list {}: {e}", dir.display()));
        for entry in entries {
            let path = entry.expect("readable dir entry").path();
            if path.extension().is_some_and(|ext| ext == "md") {
                files.push(path);
            }
        }
    }
    files.sort();
    assert!(files.len() >= 6, "expected the documentation set, found {files:?}");
    files
}

/// Extract inline markdown link targets (`[text](target)`), skipping
/// fenced code blocks and inline code spans.
fn link_targets(markdown: &str) -> Vec<String> {
    let mut targets = Vec::new();
    let mut in_fence = false;
    for line in markdown.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        // Strip inline code spans so `code [with](brackets)` never
        // counts as a link.
        let mut stripped = String::with_capacity(line.len());
        let mut in_code = false;
        for ch in line.chars() {
            if ch == '`' {
                in_code = !in_code;
            } else if !in_code {
                stripped.push(ch);
            }
        }
        let bytes = stripped.as_bytes();
        let mut i = 0;
        while i + 1 < bytes.len() {
            if bytes[i] == b']' && bytes[i + 1] == b'(' {
                let start = i + 2;
                if let Some(rel_end) = stripped[start..].find(')') {
                    targets.push(stripped[start..start + rel_end].to_string());
                    i = start + rel_end;
                }
            }
            i += 1;
        }
    }
    targets
}

#[test]
fn relative_links_resolve() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut broken = Vec::new();
    let mut checked = 0usize;
    for file in markdown_files(root) {
        let text = std::fs::read_to_string(&file)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", file.display()));
        for target in link_targets(&text) {
            // External / intra-page targets are out of scope.
            if target.contains("://") || target.starts_with('#') || target.starts_with("mailto:") {
                continue;
            }
            // `(path "title")` syntax and `path#anchor` fragments.
            let path_part = target.split_whitespace().next().unwrap_or("");
            let path_part = path_part.split('#').next().unwrap_or("");
            if path_part.is_empty() {
                continue;
            }
            checked += 1;
            let base = file.parent().expect("markdown file has a parent dir");
            if !base.join(path_part).exists() {
                broken.push(format!("{}: ({target})", file.display()));
            }
        }
    }
    assert!(broken.is_empty(), "broken relative links:\n{}", broken.join("\n"));
    // The suite must be checking something, or a parsing regression
    // could silently pass everything.
    assert!(checked > 0, "no relative links found at all — extractor broken?");
}

#[test]
fn extractor_sees_links_and_skips_code() {
    let md = "\
see [the spec](docs/PROTOCOL.md) and [site](https://example.com)\n\
```rust\nlet x = releases[0](arg); // not a link\n```\n\
inline `[not](a-link)` but [real](README.md#quick-start)\n";
    let targets = link_targets(md);
    assert_eq!(targets, vec!["docs/PROTOCOL.md", "https://example.com", "README.md#quick-start"]);
}
