//! Kill/restart determinism and fault injection for the write-ahead
//! command log — the proof behind the durability claim.
//!
//! Determinism side: every release is a pure function of `(engine seed,
//! session id, observed points)`, so a process killed after *any* prefix
//! of the command stream must replay to releases bit-identical to an
//! uninterrupted run's — including across a reshard. The suites here
//! kill after every `k`, truncate at every byte offset, and flip
//! property-chosen bits, asserting recovery lands exactly on the last
//! complete record, never panics, and never silently drops a committed
//! command.

use pir_engine::wal::{self, RECORD_OVERHEAD, SEGMENT_HEADER_LEN};
use private_incremental_regression::prelude::*;
use proptest::prelude::*;
use std::path::{Path, PathBuf};

/// A self-cleaning scratch directory under the system temp dir.
struct TempDir(PathBuf);

impl TempDir {
    fn new(name: &str) -> Self {
        let p = std::env::temp_dir().join(format!("pir-recovery-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn point(d: usize, t: usize, session: u64) -> DataPoint {
    let mut x = vec![0.0f64; d];
    x[t % d] = 0.7;
    x[(t + session as usize) % d] += 0.2;
    DataPoint::new(x, 0.25)
}

fn params() -> PrivacyParams {
    PrivacyParams::approx(1.0, 1e-6).unwrap()
}

/// A mixed command stream over four sessions: opens, single observes,
/// batches, a deterministic failure (duplicate open), and a release.
fn command_stream(d: usize) -> Vec<Command> {
    let spec = MechanismSpec::reg1_l2(d);
    let mut cmds = Vec::new();
    for sid in 0..4u64 {
        cmds.push(Command::Open {
            session_id: sid,
            spec: spec.clone(),
            t_max: 32,
            params: params(),
        });
    }
    for t in 0..3usize {
        for sid in 0..4u64 {
            cmds.push(Command::Observe { session_id: sid, point: point(d, t, sid) });
        }
    }
    for sid in 0..2u64 {
        cmds.push(Command::ObserveBatch {
            session_id: sid,
            points: (3..6).map(|t| point(d, t, sid)).collect(),
        });
    }
    // A deterministic failure: replay must reproduce the error reply,
    // not abort on it.
    cmds.push(Command::Open { session_id: 0, spec, t_max: 32, params: params() });
    cmds.push(Command::Release { session_id: 3 });
    cmds
}

/// A cheap stream (trivial mechanism) for the byte-level fault sweeps,
/// where the interesting object is the log file, not the noise.
fn cheap_stream(n: usize) -> Vec<Command> {
    let spec = MechanismSpec::Trivial { set: SetSpec::unit_l2(2) };
    let mut cmds = vec![Command::Open { session_id: 1, spec, t_max: 64, params: params() }];
    for t in 0..n.saturating_sub(1) {
        cmds.push(Command::Observe { session_id: 1, point: point(2, t, 1) });
    }
    cmds
}

/// Write `cmds` to shard 0's log in `dir` and "crash" (drop the writer
/// without `finish`).
fn log_and_crash(dir: &Path, cmds: &[Command]) {
    let mut w = WalWriter::create(&WalOptions::new(dir), 0).unwrap();
    for cmd in cmds {
        w.append(cmd).unwrap();
    }
    drop(w);
}

fn fresh_engine(num_shards: usize, seed: u64) -> ShardedEngine {
    ShardedEngine::new(EngineConfig { num_shards, seed, parallel: false }).unwrap()
}

// ---------------------------------------------------------------------------
// Kill/restart determinism
// ---------------------------------------------------------------------------

/// The headline property, exhaustively: kill after every `k`, replay,
/// and both the replayed replies and everything executed afterwards are
/// bit-identical to an uninterrupted run — even recovering into an
/// engine with a different shard count.
#[test]
fn kill_after_every_k_commands_replays_bit_identically() {
    let seed = 411;
    let cmds = command_stream(3);

    // The uninterrupted reference run.
    let mut reference = fresh_engine(1, seed);
    let ref_replies: Vec<Reply> = cmds.iter().map(|c| reference.apply(c)).collect();
    assert!(
        ref_replies.iter().any(|r| matches!(r, Reply::Err(_))),
        "the stream should include a deterministic failure"
    );

    for k in 0..=cmds.len() {
        let tmp = TempDir::new(&format!("kill-{k}"));
        log_and_crash(tmp.path(), &cmds[..k]);

        // Recover into a *3-shard* engine: replay must also be invariant
        // under resharding.
        let mut engine = fresh_engine(3, seed);
        let mut replayed = Vec::new();
        let report =
            wal::recover_with(tmp.path(), &mut engine, |_, r| replayed.push(r.clone())).unwrap();
        assert_eq!(report.commands, k as u64, "kill after {k}");
        assert_eq!(report.torn_tails, 0, "clean records only, kill after {k}");
        assert_eq!(replayed, &ref_replies[..k], "replayed replies diverged, kill after {k}");

        // The recovered engine continues exactly where the reference did.
        for (i, cmd) in cmds[k..].iter().enumerate() {
            assert_eq!(
                engine.apply(cmd),
                ref_replies[k + i],
                "post-recovery command {} diverged (kill after {k})",
                k + i
            );
        }
    }
}

/// Every fsync policy survives a killed process identically: the write
/// syscall happens before execution under all of them (policies differ
/// only in power-loss durability, which a test cannot simulate).
#[test]
fn all_fsync_policies_recover_identically_after_a_kill() {
    let seed = 97;
    let cmds = command_stream(2);
    let mut reference = fresh_engine(1, seed);
    let ref_replies: Vec<Reply> = cmds.iter().map(|c| reference.apply(c)).collect();

    for (name, fsync) in [
        ("per-record", FsyncPolicy::PerRecord),
        ("interval", FsyncPolicy::Interval { every: 4 }),
        ("off", FsyncPolicy::Off),
    ] {
        let tmp = TempDir::new(&format!("fsync-{name}"));
        let options = WalOptions { fsync, ..WalOptions::new(tmp.path()) };
        let mut w = WalWriter::create(&options, 0).unwrap();
        for cmd in &cmds {
            w.append(cmd).unwrap();
        }
        drop(w); // crash, no finish()

        let mut engine = fresh_engine(2, seed);
        let mut replayed = Vec::new();
        let report =
            wal::recover_with(tmp.path(), &mut engine, |_, r| replayed.push(r.clone())).unwrap();
        assert_eq!(report.commands, cmds.len() as u64, "policy {name}");
        assert_eq!(replayed, ref_replies, "policy {name} diverged");
    }
}

// ---------------------------------------------------------------------------
// Fault injection: tears and truncations
// ---------------------------------------------------------------------------

/// Truncate a complete one-segment log at **every** byte offset:
/// recovery must land exactly on the last record wholly before the cut,
/// report a torn tail iff the cut is mid-record (or mid-header), and
/// never error or panic — a torn file is the expected crash artifact.
#[test]
fn truncation_at_every_byte_offset_recovers_to_the_last_complete_record() {
    let seed = 5;
    let cmds = cheap_stream(6);
    let tmp = TempDir::new("truncate-src");
    log_and_crash(tmp.path(), &cmds);
    let seg = tmp.path().join(wal::segment_file_name(0, 0));
    let bytes = std::fs::read(&seg).unwrap();

    // Record-end offsets, reconstructed from the wire encoding.
    let mut record_ends = Vec::new();
    let mut at = SEGMENT_HEADER_LEN;
    for cmd in &cmds {
        at += RECORD_OVERHEAD + pir_engine::wire::encode_command(cmd).unwrap().len();
        record_ends.push(at);
    }
    assert_eq!(at, bytes.len(), "reconstructed layout must span the file");

    let mut reference = fresh_engine(1, seed);
    let ref_replies: Vec<Reply> = cmds.iter().map(|c| reference.apply(c)).collect();

    for cut in 0..=bytes.len() {
        let tdir = TempDir::new(&format!("truncate-{cut}"));
        std::fs::write(tdir.path().join(wal::segment_file_name(0, 0)), &bytes[..cut]).unwrap();

        let complete = record_ends.iter().filter(|&&e| e <= cut).count();
        let at_boundary = cut == SEGMENT_HEADER_LEN || record_ends.contains(&cut);

        let mut engine = fresh_engine(1, seed);
        let mut replayed = Vec::new();
        let report = wal::recover_with(tdir.path(), &mut engine, |_, r| replayed.push(r.clone()))
            .unwrap_or_else(|e| panic!("cut at byte {cut} must recover, got {e}"));
        assert_eq!(report.commands, complete as u64, "cut at byte {cut}");
        assert_eq!(report.torn_tails, usize::from(!at_boundary), "cut at byte {cut}");
        assert_eq!(replayed, &ref_replies[..complete], "cut at byte {cut} diverged");
    }
}

// ---------------------------------------------------------------------------
// Fault injection: bit flips (property-chosen offsets)
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any single bit flipped anywhere in a complete segment is caught
    /// as a **typed** error — checksums cover every byte — and the
    /// engine is left untouched: corruption is never replayed, never
    /// silently skipped, and never a panic.
    #[test]
    fn any_single_bit_flip_is_a_typed_error_and_nothing_is_replayed(
        raw_offset in any::<u64>(),
        bit in 0usize..8,
    ) {
        let cmds = cheap_stream(4);
        let tmp = TempDir::new(&format!("flip-{raw_offset}-{bit}"));
        log_and_crash(tmp.path(), &cmds);
        let seg = tmp.path().join(wal::segment_file_name(0, 0));
        let mut bytes = std::fs::read(&seg).unwrap();
        let offset = (raw_offset % bytes.len() as u64) as usize;
        bytes[offset] ^= 1 << bit;
        std::fs::write(&seg, &bytes).unwrap();

        let mut engine = fresh_engine(1, 5);
        let err = wal::recover(tmp.path(), &mut engine)
            .expect_err("a flipped bit must be rejected, not replayed");
        prop_assert!(
            matches!(
                err,
                WalError::BadMagic { .. }
                    | WalError::UnsupportedVersion { .. }
                    | WalError::CorruptHeader { .. }
                    | WalError::ChecksumMismatch { .. }
                    | WalError::RecordTooLarge { .. }
                    | WalError::OutOfOrder { .. }
                    | WalError::Wire { .. }
            ),
            "unexpected error class for flip at byte {offset} bit {bit}: {err:?}"
        );
        // Validate-before-apply: the engine saw nothing.
        prop_assert_eq!(engine.session_count(), 0);
        prop_assert_eq!(engine.total_points(), 0);
    }
}

// ---------------------------------------------------------------------------
// Fault injection: mid-chain damage must be loud
// ---------------------------------------------------------------------------

/// Damage *behind* the chain's end — a mid-chain segment truncated at an
/// exact record boundary, a deleted segment, a flipped byte — must be a
/// typed error: only the final torn record is ever dropped silently.
#[test]
fn mid_chain_damage_is_rejected_loudly() {
    let cmds = cheap_stream(12);
    // Size segments to hold exactly the first two records, forcing
    // rotation: the chain spans several files.
    let two_records: u64 = cmds
        .iter()
        .take(2)
        .map(|c| (RECORD_OVERHEAD + pir_engine::wire::encode_command(c).unwrap().len()) as u64)
        .sum();
    let segment_bytes = SEGMENT_HEADER_LEN as u64 + two_records;
    let make_log = |name: &str| {
        let tmp = TempDir::new(name);
        let options = WalOptions { segment_bytes, ..WalOptions::new(tmp.path()) };
        let mut w = WalWriter::create(&options, 0).unwrap();
        for cmd in &cmds {
            w.append(cmd).unwrap();
        }
        w.finish().unwrap();
        let segments: Vec<PathBuf> = (0..)
            .map(|i| tmp.path().join(wal::segment_file_name(0, i)))
            .take_while(|p| p.exists())
            .collect();
        assert!(segments.len() >= 3, "rotation must have produced a chain");
        (tmp, segments)
    };

    // (a) First segment truncated at a record boundary: its record count
    // shrinks, so the next segment's pinned first_record_seq exposes the
    // silent loss as OutOfOrder.
    let (tmp, segments) = make_log("chain-truncate");
    let seg0 = &segments[0];
    let scanned = wal::scan_segment(seg0).unwrap();
    assert!(scanned.commands.len() >= 2, "need at least two records in segment 0");
    let bytes = std::fs::read(seg0).unwrap();
    let last_len = RECORD_OVERHEAD
        + pir_engine::wire::encode_command(scanned.commands.last().unwrap()).unwrap().len();
    std::fs::write(seg0, &bytes[..bytes.len() - last_len]).unwrap();
    let mut engine = fresh_engine(1, 5);
    let err = wal::recover(tmp.path(), &mut engine).expect_err("a swallowed record must be loud");
    assert!(matches!(err, WalError::OutOfOrder { .. }), "got {err:?}");
    assert_eq!(engine.session_count(), 0);

    // (b) A segment missing from the middle of the chain.
    let (tmp, segments) = make_log("chain-gap");
    std::fs::remove_file(&segments[1]).unwrap();
    let mut engine = fresh_engine(1, 5);
    let err = wal::recover(tmp.path(), &mut engine).expect_err("a chain gap must be loud");
    assert!(
        matches!(err, WalError::MissingSegment { shard: 0, expected: 1, got: 2 }),
        "got {err:?}"
    );

    // (c) A flipped byte in the middle of the first segment.
    let (tmp, segments) = make_log("chain-flip");
    let mut bytes = std::fs::read(&segments[0]).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(&segments[0], &bytes).unwrap();
    let mut engine = fresh_engine(1, 5);
    assert!(
        wal::recover(tmp.path(), &mut engine).is_err(),
        "mid-chain corruption must not recover"
    );
    assert_eq!(engine.total_points(), 0);
}

/// Files that are not valid segments: foreign extensions are ignored,
/// a `.wal` file with an unparseable name is loud, and a well-named file
/// full of garbage is a bad-magic error.
#[test]
fn foreign_and_garbage_files_are_classified_correctly() {
    let cmds = cheap_stream(2);

    let tmp = TempDir::new("foreign-ok");
    log_and_crash(tmp.path(), &cmds);
    std::fs::write(tmp.path().join("operator-notes.txt"), b"drill log").unwrap();
    let mut engine = fresh_engine(1, 5);
    let report = wal::recover(tmp.path(), &mut engine).unwrap();
    assert_eq!(report.commands, cmds.len() as u64, "foreign extensions must be ignored");

    let tmp = TempDir::new("foreign-badname");
    log_and_crash(tmp.path(), &cmds);
    std::fs::write(tmp.path().join("backup.wal"), b"who put this here").unwrap();
    let err = wal::recover(tmp.path(), &mut fresh_engine(1, 5))
        .expect_err("an unplaceable .wal file must be loud");
    assert!(matches!(err, WalError::UnrecognizedSegment { .. }), "got {err:?}");

    let tmp = TempDir::new("foreign-garbage");
    std::fs::write(
        tmp.path().join(wal::segment_file_name(0, 0)),
        vec![0xAB; SEGMENT_HEADER_LEN + 8],
    )
    .unwrap();
    let err = wal::recover(tmp.path(), &mut fresh_engine(1, 5))
        .expect_err("garbage under a valid name must be loud");
    assert!(matches!(err, WalError::BadMagic { .. }), "got {err:?}");

    // A missing directory is an empty log, not an error.
    let report = wal::recover(
        std::env::temp_dir().join("pir-recovery-never-created"),
        &mut fresh_engine(1, 5),
    )
    .unwrap();
    assert_eq!(report, RecoveryReport::default());
}

// ---------------------------------------------------------------------------
// The pipelined engine end to end: restart-with-replay
// ---------------------------------------------------------------------------

/// `EngineHandle::with_wal` round trip: log a first run's traffic,
/// restart with a different shard count, and both the replayed state and
/// all post-restart releases are bit-identical to one uninterrupted
/// direct-engine run. Then the retention path: purge after clean
/// shutdown leaves an empty log.
#[test]
fn pipelined_engine_with_wal_restarts_bit_identically_across_a_reshard() {
    let seed = 20177;
    let d = 3;
    let sessions = 4u64;
    let spec = MechanismSpec::reg1_l2(d);
    let tmp = TempDir::new("e2e");
    let options = WalOptions { fsync: FsyncPolicy::Off, ..WalOptions::new(tmp.path()) };

    // ---- Run 1: fresh log, four sessions, six points each ----------------
    let (handle, report) =
        EngineHandle::with_wal(IngressConfig { num_shards: 2, seed, queue_depth: 64 }, &options)
            .unwrap();
    assert_eq!(report.commands, 0, "a fresh directory replays nothing");
    let mut run1: Vec<Vec<Vec<f64>>> = Vec::new();
    for sid in 0..sessions {
        handle.open(sid, &spec, 16, &params()).unwrap().wait();
    }
    for sid in 0..sessions {
        let mut thetas = Vec::new();
        for t in 0..6 {
            let reply = handle.observe(sid, point(d, t, sid)).unwrap().wait();
            thetas.extend(reply.into_releases().unwrap());
        }
        run1.push(thetas);
    }
    let stats = handle.close(); // clean shutdown: log is synced
    assert_eq!(stats.sessions, sessions as usize);

    // ---- Run 2: restart on the same log with a *different* shard count ---
    let (handle, report) =
        EngineHandle::with_wal(IngressConfig { num_shards: 3, seed, queue_depth: 64 }, &options)
            .unwrap();
    assert_eq!(report.commands, sessions + sessions * 6);
    assert_eq!(report.failed, 0);
    let mut run2: Vec<Vec<Vec<f64>>> = Vec::new();
    for sid in 0..sessions {
        let mut thetas = Vec::new();
        for t in 6..8 {
            let reply = handle.observe(sid, point(d, t, sid)).unwrap().wait();
            thetas.extend(reply.into_releases().unwrap());
        }
        run2.push(thetas);
    }
    let stats = handle.close();
    assert_eq!(stats.sessions, sessions as usize, "replayed sessions survive the restart");

    // ---- The uninterrupted reference ------------------------------------
    let mut direct = fresh_engine(1, seed);
    direct.spawn_sessions(0..sessions, &spec, 16, &params()).unwrap();
    for sid in 0..sessions {
        for t in 0..8usize {
            let expected = direct.observe(sid, &point(d, t, sid)).unwrap();
            let got = if t < 6 { &run1[sid as usize][t] } else { &run2[sid as usize][t - 6] };
            assert_eq!(got, &expected, "session {sid} step {t} diverged across the restart");
        }
    }

    // ---- Retention: purge after clean shutdown --------------------------
    let removed = wal::purge(tmp.path()).unwrap();
    assert!(removed >= 2, "both runs' segments should be removed, got {removed}");
    let (handle, report) =
        EngineHandle::with_wal(IngressConfig { num_shards: 2, seed, queue_depth: 64 }, &options)
            .unwrap();
    assert_eq!(report.commands, 0, "a purged log replays nothing");
    handle.close();
}

/// A torn partial record appended to a shard's chain (the crash
/// artifact) is tolerated and *counted* on the next `with_wal` startup,
/// and every complete record before it is replayed.
#[test]
fn with_wal_tolerates_and_counts_a_torn_tail() {
    let seed = 9;
    let tmp = TempDir::new("torn-e2e");
    let options = WalOptions { fsync: FsyncPolicy::Off, ..WalOptions::new(tmp.path()) };
    let cmds = cheap_stream(3);
    {
        let mut w = WalWriter::create(&options, 0).unwrap();
        for cmd in &cmds {
            w.append(cmd).unwrap();
        }
        w.finish().unwrap();
    }
    // The torn artifact: a partial record header at the chain's end.
    let seg = tmp.path().join(wal::segment_file_name(0, 0));
    let mut bytes = std::fs::read(&seg).unwrap();
    bytes.extend_from_slice(&[0x44, 0x00, 0x00, 0x00, 0x01]);
    std::fs::write(&seg, &bytes).unwrap();

    let (handle, report) =
        EngineHandle::with_wal(IngressConfig { num_shards: 1, seed, queue_depth: 16 }, &options)
            .unwrap();
    assert_eq!(report.commands, cmds.len() as u64);
    assert_eq!(report.torn_tails, 1, "the torn artifact is counted, not hidden");
    assert_eq!(report.failed, 0);
    let stats = handle.close();
    assert_eq!(stats.sessions, 1);
    assert_eq!(stats.points, cmds.len() - 1);
}
