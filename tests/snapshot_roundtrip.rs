//! Snapshot → restore → observe bit-identity — the property behind the
//! session snapshot format (`PIRS`), the spill tier, and checkpoint
//! compaction.
//!
//! A restored session is not "approximately resumed": its future release
//! sequence must be **bit-for-bit identical** to the uninterrupted
//! session's, for both tree-based (`PRIVINCREG1`) and sketch-based
//! (`PRIVINCREG2`) mechanisms, at *every* snapshot step — including
//! steps that land mid-way through a tree epoch, where most of the
//! mechanism's dynamic state (partial sums, cached noise, the serialized
//! RNG position) is in play.

use private_incremental_regression::prelude::*;
use proptest::prelude::*;

fn params() -> PrivacyParams {
    PrivacyParams::approx(1.0, 1e-6).unwrap()
}

fn point(d: usize, t: usize, session: u64) -> DataPoint {
    let mut x = vec![0.0f64; d];
    x[t % d] = 0.7;
    x[(t + session as usize) % d] += 0.2;
    DataPoint::new(x, 0.25)
}

fn fresh_engine(num_shards: usize, seed: u64) -> ShardedEngine {
    ShardedEngine::new(EngineConfig { num_shards, seed, parallel: false }).unwrap()
}

/// Drive `session_id` to step `cut` inside an engine, snapshot it there,
/// and check the restored session's remaining releases against the
/// engine's (which never stopped).
fn assert_roundtrip_at(spec: &MechanismSpec, seed: u64, session_id: u64, t_max: usize, cut: usize) {
    let d = spec.dim();
    let mut engine = fresh_engine(2, seed);
    engine.spawn_session(session_id, spec, t_max, &params()).unwrap();
    for t in 0..cut {
        engine.observe(session_id, &point(d, t, session_id)).unwrap();
    }

    let blob = engine.with_session(session_id, |s| s.snapshot().unwrap()).unwrap();
    let mut restored = StreamSession::restore(&blob, seed).unwrap();
    assert_eq!(restored.t(), cut, "restored stream position");
    assert_eq!(restored.id(), session_id);

    // Snapshotting is read-only: the original session keeps serving, and
    // both must release identical bytes for the rest of the horizon.
    for t in cut..t_max {
        let z = point(d, t, session_id);
        let live = engine.observe(session_id, &z).unwrap();
        let replica = restored.observe(&z).unwrap();
        let live_bits: Vec<u64> = live.iter().map(|v| v.to_bits()).collect();
        let replica_bits: Vec<u64> = replica.iter().map(|v| v.to_bits()).collect();
        assert_eq!(live_bits, replica_bits, "release diverged at t = {t} (cut at {cut})");
    }
}

/// Exhaustive over every cut point for one representative config per
/// mechanism: `t_max = 12` crosses several complete binary-tree levels,
/// so the cuts hit every class of mid-tree state.
#[test]
fn every_cut_point_restores_bit_identically() {
    let t_max = 12;
    for cut in 0..=t_max {
        assert_roundtrip_at(&MechanismSpec::reg1_l2(3), 41, 900, t_max, cut);
        assert_roundtrip_at(&MechanismSpec::reg2_l1(4, 1.0), 41, 901, t_max, cut);
    }
}

/// Restoring under the wrong engine seed must not silently resume a
/// `PRIVINCREG2` session: the sketch matrix is reproduced from the seed,
/// so a wrong-seeded engine would diverge from the first release on.
/// The snapshot's seed fingerprint turns that silent divergence into a
/// loud, typed refusal (part of the durability contract documented on
/// `StreamSession::restore`).
#[test]
fn reg2_restore_under_wrong_seed_is_refused() {
    let spec = MechanismSpec::reg2_l1(4, 1.0);
    let (seed, sid, t_max) = (77, 5, 8);
    let mut engine = fresh_engine(1, seed);
    engine.spawn_session(sid, &spec, t_max, &params()).unwrap();
    for t in 0..3 {
        engine.observe(sid, &point(4, t, sid)).unwrap();
    }
    let blob = engine.with_session(sid, |s| s.snapshot().unwrap()).unwrap();
    let err = StreamSession::restore(&blob, seed + 1).unwrap_err();
    assert!(matches!(err, SnapshotError::SeedMismatch { .. }), "got {err:?}");
    // The honest seed still restores and resumes the stream exactly.
    let mut replica = StreamSession::restore(&blob, seed).unwrap();
    for t in 3..t_max {
        let z = point(4, t, sid);
        let live = engine.observe(sid, &z).unwrap();
        let resumed = replica.observe(&z).unwrap();
        let live_bits: Vec<u64> = live.iter().map(|v| v.to_bits()).collect();
        let resumed_bits: Vec<u64> = resumed.iter().map(|v| v.to_bits()).collect();
        assert_eq!(live_bits, resumed_bits, "honest-seed restore diverged at t = {t}");
    }
}

/// `adopt_session` is the engine-side import half: a session restored
/// from a snapshot and adopted into a *fresh* engine (any shard count)
/// continues the stream exactly.
#[test]
fn adopted_sessions_continue_identically_across_reshard() {
    let spec = MechanismSpec::reg1_l2(3);
    let (seed, sid, t_max, cut) = (19, 321, 10, 6);
    let mut engine = fresh_engine(1, seed);
    engine.spawn_session(sid, &spec, t_max, &params()).unwrap();
    for t in 0..cut {
        engine.observe(sid, &point(3, t, sid)).unwrap();
    }
    let blob = engine.with_session(sid, |s| s.snapshot().unwrap()).unwrap();

    for shards in [1usize, 3, 5] {
        let mut importer = fresh_engine(shards, seed);
        importer.adopt_session(StreamSession::restore(&blob, seed).unwrap()).unwrap();
        // Duplicate adoption is rejected, leaving the first intact.
        let err = importer.adopt_session(StreamSession::restore(&blob, seed).unwrap()).unwrap_err();
        assert!(matches!(err, EngineError::DuplicateSession { id } if id == sid));

        let mut reference = fresh_engine(1, seed);
        reference.adopt_session(StreamSession::restore(&blob, seed).unwrap()).unwrap();
        for t in cut..t_max {
            let z = point(3, t, sid);
            let a = importer.observe(sid, &z).unwrap();
            let b = reference.observe(sid, &z).unwrap();
            let a_bits: Vec<u64> = a.iter().map(|v| v.to_bits()).collect();
            let b_bits: Vec<u64> = b.iter().map(|v| v.to_bits()).collect();
            assert_eq!(a_bits, b_bits, "adopted session diverged under {shards} shards at {t}");
        }
    }
}

/// Sessions that cannot snapshot say so with a typed error instead of a
/// lossy blob: `PRIVINCERM` state is the full observed history.
#[test]
fn erm_sessions_report_unsupported() {
    let spec = MechanismSpec::erm_squared(2, TauRule::Fixed(4));
    let seed = 3;
    let mut engine = fresh_engine(1, seed);
    engine.spawn_session(9, &spec, 16, &params()).unwrap();
    let (supports, err) =
        engine.with_session(9, |s| (s.supports_snapshot(), s.snapshot().unwrap_err())).unwrap();
    assert!(!supports);
    assert!(matches!(err, SnapshotError::Unsupported { .. }), "got {err:?}");
}

/// The worked example in `docs/PROTOCOL.md`, byte for byte: the
/// 115-byte snapshot of a freshly opened `Trivial` session. If this
/// test moves, the documentation is lying.
#[test]
fn snapshot_worked_example_matches_protocol_md() {
    let mut engine = fresh_engine(1, 7);
    engine
        .spawn_session(7, &MechanismSpec::Trivial { set: SetSpec::unit_l2(2) }, 8, &params())
        .unwrap();
    let blob = engine.with_session(7, |s| s.snapshot().unwrap()).unwrap();
    assert_eq!(
        u64::from_le_bytes(blob[20..28].try_into().unwrap()),
        pir_engine::snapshot::seed_fingerprint(7, 7),
        "fingerprint field is the digest of (engine seed 7, session 7)"
    );
    #[rustfmt::skip]
    let expected: Vec<u8> = vec![
        // magic "PIRS", version 2, reserved
        0x50, 0x49, 0x52, 0x53, 0x02, 0x00, 0x00, 0x00,
        // body length = 99
        0x63, 0x00, 0x00, 0x00,
        // session id = 7, seed fingerprint of (engine seed 7, session 7)
        0x07, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
        0xE5, 0xBA, 0xE3, 0x50, 0xED, 0xE3, 0x27, 0xB9,
        // t_max = 8, t = 0
        0x08, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
        0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
        // budget (1.0, 1e-6), spent (1.0, 1e-6)
        0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xF0, 0x3F,
        0x8D, 0xED, 0xB5, 0xA0, 0xF7, 0xC6, 0xB0, 0x3E,
        0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xF0, 0x3F,
        0x8D, 0xED, 0xB5, 0xA0, 0xF7, 0xC6, 0xB0, 0x3E,
        // spec: len 18, tag Trivial, L2Ball dim 2 radius 1.0
        0x12, 0x00, 0x00, 0x00,
        0x03, 0x00,
        0x02, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
        0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xF0, 0x3F,
        // state: len 9, opaque mechanism blob
        0x09, 0x00, 0x00, 0x00,
        0x03, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
        // CRC-32
        0x14, 0xB7, 0xCC, 0x69,
    ];
    assert_eq!(blob, expected, "docs/PROTOCOL.md's PIRS worked example is stale");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The property, randomized: for either regression mechanism, any
    /// dimension, horizon, seed, and cut point, snapshot → restore →
    /// observe is bit-identical to never stopping.
    #[test]
    fn snapshot_roundtrip_is_bit_identical(
        use_reg2_bit in 0u64..2,
        d in 2usize..5,
        seed in 0u64..1_000_000,
        sid in 1u64..1_000_000,
        t_max in 4usize..17,
        cut_frac in 0.0f64..1.0,
    ) {
        let spec = if use_reg2_bit == 1 {
            MechanismSpec::reg2_l1(d, 1.0)
        } else {
            MechanismSpec::reg1_l2(d)
        };
        let cut = ((t_max as f64) * cut_frac) as usize;
        assert_roundtrip_at(&spec, seed, sid, t_max, cut.min(t_max));
    }

    /// Snapshot encoding is deterministic and stable under re-encoding:
    /// the same session state always produces the same bytes (what makes
    /// snapshot digests comparable across runs).
    #[test]
    fn snapshot_bytes_are_deterministic(
        seed in 0u64..1_000_000,
        sid in 1u64..1_000_000,
        steps in 0usize..9,
    ) {
        let spec = MechanismSpec::reg1_l2(3);
        let mut engine = fresh_engine(2, seed);
        engine.spawn_session(sid, &spec, 16, &params()).unwrap();
        for t in 0..steps {
            engine.observe(sid, &point(3, t, sid)).unwrap();
        }
        let a = engine.with_session(sid, |s| s.snapshot().unwrap()).unwrap();
        let b = engine.with_session(sid, |s| s.snapshot().unwrap()).unwrap();
        prop_assert_eq!(&a, &b, "snapshotting twice produced different bytes");
        // And a restored session re-snapshots to the same bytes.
        let restored = StreamSession::restore(&a, seed).unwrap();
        prop_assert_eq!(&restored.snapshot().unwrap(), &a);
    }
}
