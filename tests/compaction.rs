//! WAL compaction checkpoints, end to end: a checkpoint must be a pure
//! *representation change* of the log. Recovering from
//! `snapshot + tail` has to reproduce the same engine — same replies,
//! same future releases, to the bit — as replaying the full log, and a
//! checkpoint taken under live traffic must lose nothing.

use pir_engine::wal;
use private_incremental_regression::prelude::*;
use std::path::{Path, PathBuf};

/// A self-cleaning scratch directory under the system temp dir.
struct TempDir(PathBuf);

impl TempDir {
    fn new(name: &str) -> Self {
        let p = std::env::temp_dir().join(format!("pir-compaction-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn point(d: usize, t: usize, session: u64) -> DataPoint {
    let mut x = vec![0.0f64; d];
    x[t % d] = 0.7;
    x[(t + session as usize) % d] += 0.2;
    DataPoint::new(x, 0.25)
}

fn params() -> PrivacyParams {
    PrivacyParams::approx(1.0, 1e-6).unwrap()
}

fn fresh_engine(num_shards: usize, seed: u64) -> ShardedEngine {
    ShardedEngine::new(EngineConfig { num_shards, seed, parallel: false }).unwrap()
}

/// A mixed stream over four snapshot-capable sessions: opens, observes,
/// batches, a deterministic failure (duplicate open), and a release —
/// the same shape `tests/recovery.rs` replays, minus mechanisms that
/// cannot ride a checkpoint.
fn command_stream(d: usize) -> Vec<Command> {
    let spec = MechanismSpec::reg1_l2(d);
    let mut cmds = Vec::new();
    for sid in 0..4u64 {
        cmds.push(Command::Open {
            session_id: sid,
            spec: spec.clone(),
            t_max: 32,
            params: params(),
        });
    }
    for t in 0..3usize {
        for sid in 0..4u64 {
            cmds.push(Command::Observe { session_id: sid, point: point(d, t, sid) });
        }
    }
    for sid in 0..2u64 {
        cmds.push(Command::ObserveBatch {
            session_id: sid,
            points: (3..6).map(|t| point(d, t, sid)).collect(),
        });
    }
    cmds.push(Command::Open { session_id: 0, spec, t_max: 32, params: params() });
    cmds.push(Command::Release { session_id: 3 });
    cmds
}

/// Write `cmds` to shard 0's log in `dir` and "crash" (drop the writer
/// without `finish`).
fn log_and_crash(dir: &Path, cmds: &[Command]) {
    let mut w = WalWriter::create(&WalOptions::new(dir), 0).unwrap();
    for cmd in cmds {
        w.append(cmd).unwrap();
    }
    drop(w);
}

fn segment_count(dir: &Path) -> usize {
    std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().ends_with(".wal"))
        .count()
}

fn releases_of(reply: Reply) -> Vec<Vec<f64>> {
    match reply {
        Reply::Releases { thetas, .. } => thetas,
        other => panic!("expected releases, got {other:?}"),
    }
}

fn bits(theta: &[f64]) -> Vec<u64> {
    theta.iter().map(|v| v.to_bits()).collect()
}

// ---------------------------------------------------------------------------
// Quiesced checkpoints
// ---------------------------------------------------------------------------

/// The headline property: cut the stream at `k`, recover, checkpoint,
/// log the rest, crash, and recover again — the tail's replayed replies
/// and every future release are bit-identical to a run that never
/// checkpointed (or crashed) at all, across different shard counts.
#[test]
fn checkpoint_mid_stream_replays_bit_identically_to_the_full_log() {
    let seed = 411;
    let cmds = command_stream(3);

    // The uninterrupted reference: full stream, then more observes on
    // every surviving session.
    let mut reference = fresh_engine(1, seed);
    let ref_replies: Vec<Reply> = cmds.iter().map(|c| reference.apply(c)).collect();
    assert!(ref_replies.iter().any(|r| matches!(r, Reply::Err(_))));
    let mut ref_future = Vec::new();
    for t in 6..9 {
        for sid in 0..3u64 {
            ref_future.push(reference.observe(sid, &point(3, t, sid)).unwrap());
        }
    }

    for k in [0, 4, 9, cmds.len()] {
        let tmp = TempDir::new(&format!("quiesced-{k}"));
        log_and_crash(tmp.path(), &cmds[..k]);

        // Recover the prefix, checkpoint it, and confirm the covered
        // segments are really gone: the checkpoint *replaces* the log.
        let mut staging = fresh_engine(2, seed);
        wal::recover(tmp.path(), &mut staging).unwrap();
        let live_sessions = (0..4u64).filter(|sid| staging.contains(*sid)).count();
        let report = wal::checkpoint(tmp.path(), &staging).unwrap();
        assert_eq!(report.sessions, live_sessions, "k = {k}");
        // Even at k = 0 the crashed writer left one (empty) segment.
        assert_eq!(report.segments_purged, 1, "k = {k}");
        assert_eq!(segment_count(tmp.path()), 0, "k = {k}: covered segments must be purged");
        drop(staging);

        // Log the tail onto the compacted directory and crash again.
        let mut w = WalWriter::create(&WalOptions::new(tmp.path()), 0).unwrap();
        for cmd in &cmds[k..] {
            w.append(cmd).unwrap();
        }
        drop(w);

        // snapshot + tail must equal the full log — under a different
        // shard count than either the reference or the staging engine.
        let mut engine = fresh_engine(3, seed);
        let mut replayed = Vec::new();
        wal::recover_with(tmp.path(), &mut engine, |_, r| replayed.push(r.clone())).unwrap();
        assert_eq!(replayed, ref_replies[k..], "k = {k}: tail replies diverged");
        for t in 6..9 {
            for sid in 0..3u64 {
                let got = engine.observe(sid, &point(3, t, sid)).unwrap();
                let want = &ref_future[(t - 6) * 3 + sid as usize];
                assert_eq!(bits(&got), bits(want), "k = {k}: release diverged at t = {t}");
            }
        }
    }
}

/// Checkpoints stack: a second checkpoint over `snapshot + tail` covers
/// everything again (superseding the first manifest), and recovery from
/// the latest generation alone still reproduces the stream.
#[test]
fn repeated_checkpoints_supersede_and_stay_bit_identical() {
    let seed = 902;
    let cmds = command_stream(3);
    let tmp = TempDir::new("stacked");

    let mut reference = fresh_engine(1, seed);
    for cmd in &cmds {
        reference.apply(cmd);
    }

    // Checkpoint after every third of the stream.
    let cuts = [cmds.len() / 3, 2 * cmds.len() / 3, cmds.len()];
    let mut logged = 0;
    let mut last_generation = None;
    for cut in cuts {
        let mut w = WalWriter::create(&WalOptions::new(tmp.path()), 0).unwrap();
        for cmd in &cmds[logged..cut] {
            w.append(cmd).unwrap();
        }
        drop(w);
        logged = cut;

        let mut staging = fresh_engine(1, seed);
        wal::recover(tmp.path(), &mut staging).unwrap();
        let report = wal::checkpoint(tmp.path(), &staging).unwrap();
        assert!(last_generation.is_none_or(|g| report.generation > g), "generations must increase");
        last_generation = Some(report.generation);
    }

    let mut engine = fresh_engine(2, seed);
    let report = wal::recover(tmp.path(), &mut engine).unwrap();
    assert_eq!(report.commands, 0, "everything is in the snapshot; nothing replays");
    for t in 6..9 {
        for sid in 0..3u64 {
            let got = engine.observe(sid, &point(3, t, sid)).unwrap();
            let want = reference.observe(sid, &point(3, t, sid)).unwrap();
            assert_eq!(bits(&got), bits(&want), "diverged at t = {t} after stacked checkpoints");
        }
    }
}

/// A session whose mechanism cannot snapshot (`PRIVINCERM` keeps the
/// full observed history) makes the quiesced checkpoint refuse — loudly,
/// and without deleting anything: the log stays the source of truth.
#[test]
fn unsnapshottable_sessions_fail_the_checkpoint_without_purging() {
    let tmp = TempDir::new("erm");
    let cmds = vec![Command::Open {
        session_id: 1,
        spec: MechanismSpec::erm_squared(2, TauRule::Fixed(4)),
        t_max: 16,
        params: params(),
    }];
    log_and_crash(tmp.path(), &cmds);

    let mut engine = fresh_engine(1, 7);
    wal::recover(tmp.path(), &mut engine).unwrap();
    let err = wal::checkpoint(tmp.path(), &engine).unwrap_err();
    assert!(matches!(err, WalError::Snapshot { .. }), "got {err:?}");
    assert!(tmp.path().join(wal::segment_file_name(0, 0)).exists(), "segments must survive");

    // The untouched log still recovers in full.
    let mut again = fresh_engine(1, 7);
    let report = wal::recover(tmp.path(), &mut again).unwrap();
    assert_eq!(report.commands, 1);
    assert!(again.contains(1));
}

// ---------------------------------------------------------------------------
// Live checkpoints through the pipelined frontend
// ---------------------------------------------------------------------------

/// `EngineHandle::checkpoint` on a serving engine, then a restart: the
/// releases after the restart continue the exact sequences a never-
/// interrupted engine produces.
#[test]
fn live_checkpoint_then_restart_continues_bit_identically() {
    let tmp = TempDir::new("live");
    let seed = 5150;
    let config = IngressConfig { num_shards: 2, seed, queue_depth: 256 };
    let options = WalOptions::new(tmp.path());
    let spec = MechanismSpec::reg1_l2(3);
    let sids: Vec<u64> = (10..16).collect();
    let mut live: Vec<Vec<f64>> = Vec::new(); // (t, sid) order, all phases

    let (handle, report) = EngineHandle::with_wal(config, &options).unwrap();
    assert_eq!(report.commands, 0);
    for &sid in &sids {
        assert_eq!(
            handle.open(sid, &spec, 32, &params()).unwrap().wait(),
            Reply::Opened { session_id: sid }
        );
    }
    for t in 0..3 {
        for &sid in &sids {
            let reply = handle.observe(sid, point(3, t, sid)).unwrap().wait();
            live.extend(releases_of(reply));
        }
    }

    let report = handle.checkpoint().unwrap();
    assert_eq!(report.sessions, sids.len());
    assert!(report.segments_purged >= 1, "the pre-checkpoint segments must be covered");

    // Traffic after the checkpoint lands in fresh segments (the tail).
    for t in 3..6 {
        for &sid in &sids {
            let reply = handle.observe(sid, point(3, t, sid)).unwrap().wait();
            live.extend(releases_of(reply));
        }
    }
    handle.close();

    // Restart: recovery boots from snapshot + tail, and the sequences
    // keep going.
    let (handle, report) = EngineHandle::with_wal(config, &options).unwrap();
    assert_eq!(report.commands, (3 * sids.len()) as u64, "only the post-checkpoint tail replays");
    for t in 6..9 {
        for &sid in &sids {
            let reply = handle.observe(sid, point(3, t, sid)).unwrap().wait();
            live.extend(releases_of(reply));
        }
    }
    handle.close();

    // The uninterrupted reference, same seed: every phase must agree.
    let mut reference = fresh_engine(1, seed);
    for &sid in &sids {
        reference.spawn_session(sid, &spec, 32, &params()).unwrap();
    }
    let mut at = 0;
    for t in 0..9 {
        for &sid in &sids {
            let want = reference.observe(sid, &point(3, t, sid)).unwrap();
            assert_eq!(bits(&live[at]), bits(&want), "t = {t}, session {sid}");
            at += 1;
        }
    }
    assert_eq!(at, live.len());
}

/// Checkpoints taken *while traffic is flowing* lose nothing: every
/// release handed out before, during, and after the checkpoints — and
/// everything recovered afterwards — matches the uninterrupted engine.
#[test]
fn checkpoint_under_live_traffic_loses_nothing() {
    let tmp = TempDir::new("concurrent");
    let seed = 31337;
    let config = IngressConfig { num_shards: 2, seed, queue_depth: 256 };
    let options = WalOptions::new(tmp.path());
    let spec = MechanismSpec::reg1_l2(3);
    let steps = 12usize;

    let (handle, _) = EngineHandle::with_wal(config, &options).unwrap();
    for sid in 0..4u64 {
        handle.open(sid, &spec, 32, &params()).unwrap().wait();
    }
    let submit = handle.submit_handle();
    let (live, reports) = std::thread::scope(|s| {
        let feeder = s.spawn(move || {
            let mut out = Vec::new();
            for t in 0..steps {
                for sid in 0..4u64 {
                    let reply = submit.observe(sid, point(3, t, sid)).unwrap().wait();
                    out.extend(releases_of(reply));
                }
            }
            out
        });
        // Race three checkpoints against the feeder.
        let reports: Vec<CheckpointReport> = (0..3).map(|_| handle.checkpoint().unwrap()).collect();
        (feeder.join().unwrap(), reports)
    });
    assert!(reports.iter().all(|r| r.sessions == 4));
    assert!(
        reports.windows(2).all(|w| w[1].generation > w[0].generation),
        "generations must increase"
    );
    handle.close();

    // Recover and take one more step per session.
    let (handle, _) = EngineHandle::with_wal(config, &options).unwrap();
    let mut after = Vec::new();
    for sid in 0..4u64 {
        let reply = handle.observe(sid, point(3, steps, sid)).unwrap().wait();
        after.extend(releases_of(reply));
    }
    handle.close();

    let mut reference = fresh_engine(1, seed);
    for sid in 0..4u64 {
        reference.spawn_session(sid, &spec, 32, &params()).unwrap();
    }
    let mut at = 0;
    for t in 0..steps {
        for sid in 0..4u64 {
            let want = reference.observe(sid, &point(3, t, sid)).unwrap();
            assert_eq!(bits(&live[at]), bits(&want), "t = {t}, session {sid}");
            at += 1;
        }
    }
    for sid in 0..4u64 {
        let want = reference.observe(sid, &point(3, steps, sid)).unwrap();
        assert_eq!(bits(&after[sid as usize]), bits(&want), "post-recovery step, session {sid}");
    }
}

/// Without a write-ahead log there is nothing to compact: `checkpoint`
/// on a plain pipelined engine is a typed configuration error.
#[test]
fn checkpoint_without_a_wal_is_invalid_config() {
    let handle =
        EngineHandle::new(IngressConfig { num_shards: 1, seed: 1, queue_depth: 8 }).unwrap();
    let err = handle.checkpoint().unwrap_err();
    assert!(matches!(err, EngineError::InvalidConfig { .. }), "got {err:?}");
    handle.close();
}
