//! Tier-1 smoke test for the TCP serving front: a small fleet served
//! over 127.0.0.1 (no external network), concurrent clients on disjoint
//! sessions, releases checked bit-for-bit against the direct
//! single-threaded engine. The heavier property tests live in
//! `crates/engine/tests/tcp.rs`; this one pins the end-to-end stack —
//! prelude exports included — into the tier-1 `cargo test` gate.

use private_incremental_regression::prelude::*;
use std::net::{TcpListener, TcpStream};

fn point(d: usize, t: usize, session: u64) -> DataPoint {
    let mut x = vec![0.0f64; d];
    x[t % d] = 0.7;
    x[(t + session as usize) % d] += 0.2;
    DataPoint::new(x, 0.25)
}

#[test]
fn loopback_tcp_fleet_matches_direct_engine() {
    let seed = 20177;
    let d = 3;
    let steps = 4usize;
    let clients = 4u64;
    let spec = MechanismSpec::reg1_l2(d);
    let params = PrivacyParams::approx(1.0, 1e-6).unwrap();

    let handle = EngineHandle::new(IngressConfig { num_shards: 2, seed, queue_depth: 64 }).unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let front = serve_tcp(handle.submit_handle(), listener).unwrap();
    let addr = front.local_addr();

    let conversations: Vec<(u64, Vec<Reply>)> = std::thread::scope(|s| {
        let joins: Vec<_> = (0..clients)
            .map(|sid| {
                let spec = spec.clone();
                s.spawn(move || {
                    let mut stream = TcpStream::connect(addr).unwrap();
                    let mut request = Vec::new();
                    pir_engine::wire::write_command(
                        &mut request,
                        &Command::Open { session_id: sid, spec, t_max: steps, params },
                    )
                    .unwrap();
                    for t in 0..steps {
                        pir_engine::wire::write_command(
                            &mut request,
                            &Command::Observe { session_id: sid, point: point(d, t, sid) },
                        )
                        .unwrap();
                    }
                    pir_engine::wire::write_command(&mut request, &Command::Close).unwrap();
                    std::io::Write::write_all(&mut stream, &request).unwrap();
                    let mut replies = Vec::new();
                    loop {
                        match pir_engine::wire::read_reply(&mut stream).unwrap() {
                            Some(Reply::Closed) => break,
                            Some(reply) => replies.push(reply),
                            None => break,
                        }
                    }
                    (sid, replies)
                })
            })
            .collect();
        joins.into_iter().map(|j| j.join().unwrap()).collect()
    });

    let stats = front.shutdown();
    assert_eq!(stats.connections, clients);
    assert_eq!(stats.protocol_errors, 0);
    handle.close();

    let mut direct =
        ShardedEngine::new(EngineConfig { num_shards: 1, seed, parallel: false }).unwrap();
    direct.spawn_sessions(0..clients, &spec, steps, &params).unwrap();
    for (sid, replies) in conversations {
        assert_eq!(replies.len(), steps + 1);
        assert_eq!(replies[0], Reply::Opened { session_id: sid });
        for t in 0..steps {
            let expected = direct.observe(sid, &point(d, t, sid)).unwrap();
            assert_eq!(
                replies[1 + t],
                Reply::Releases { session_id: sid, thetas: vec![expected] },
                "session {sid} step {t}"
            );
        }
    }
}
