//! Experiment E10 as a test suite: the privacy ledger of every mechanism
//! composes to at most its declared `(ε, δ)` budget.

use private_incremental_regression::dp::{composition, mechanisms, PrivacyAccountant};
use private_incremental_regression::prelude::*;

#[test]
fn priv_inc_erm_schedule_fits_for_all_tau_rules() {
    // For every τ rule and a grid of (T, ε): composing the per-invocation
    // budget over ⌈T/τ⌉ uses stays within (ε, δ).
    for &t_max in &[8usize, 64, 500] {
        for &eps in &[0.1, 0.5, 1.0] {
            for rule in [TauRule::Fixed(1), TauRule::Fixed(7), TauRule::Convex, TauRule::LowWidth] {
                let total = PrivacyParams::approx(eps, 1e-6).unwrap();
                let mech = PrivIncErm::new(
                    Box::new(SquaredLoss),
                    Box::new(NoisyGdSolver { iters: 4, beta: 0.1 }),
                    Box::new(L2Ball::unit(8)),
                    t_max,
                    &total,
                    rule,
                    NoiseRng::seed_from_u64(1),
                )
                .unwrap();
                let composed = composition::verify_within_budget(
                    mech.invocations(),
                    &mech.per_invocation(),
                    &total,
                )
                .unwrap_or_else(|e| panic!("rule {rule:?}, T={t_max}, ε={eps}: {e}"));
                assert!(composed.epsilon() <= eps * (1.0 + 1e-9));
                assert!(composed.delta() <= 1e-6 * (1.0 + 1e-9));
            }
        }
    }
}

#[test]
fn mech1_ledger_two_half_budget_trees() {
    // Algorithm 2 runs two tree mechanisms at (ε/2, δ/2); the accountant
    // confirms the basic composition is exactly the declared budget.
    let total = PrivacyParams::approx(1.0, 1e-5).unwrap();
    let mut acc = PrivacyAccountant::new(total);
    acc.charge("tree over x·y", total.halve()).unwrap();
    acc.charge("tree over x xᵀ", total.halve()).unwrap();
    let (e, d) = acc.spent();
    assert!((e - 1.0).abs() < 1e-12);
    assert!((d - 1e-5).abs() < 1e-15);
    // A third sub-mechanism would overdraft.
    assert!(acc.charge("extra", total.halve()).is_err());
}

#[test]
fn tree_noise_matches_algorithm4_formula_through_the_mechanism() {
    // The σ used by PrivIncReg1's trees is exactly Algorithm 4, Step 8
    // at the halved budget: σ = √2·log₂T·Δ₂·√ln(2/δ′)/ε′.
    let total = PrivacyParams::approx(2.0, 1e-4).unwrap();
    let half = total.halve();
    let t_max = 1024usize;
    let tree =
        TreeMechanism::with_sensitivity(3, t_max, 2.0, &half, NoiseRng::seed_from_u64(2)).unwrap();
    let expect = (2.0f64).sqrt() * 10.0 * 2.0 * (2.0 / half.delta()).ln().sqrt() / half.epsilon();
    assert!((tree.sigma() - expect).abs() < 1e-9);
}

#[test]
fn gaussian_mechanism_sigma_decomposes_with_budget_splits() {
    // Splitting a budget k ways multiplies σ by k (for fixed δ-part):
    // the cost picture behind every τ/k trade-off in the paper.
    let total = PrivacyParams::approx(1.0, 1e-6).unwrap();
    let s1 = mechanisms::gaussian_sigma(1.0, &total).unwrap();
    let s4 = mechanisms::gaussian_sigma(1.0, &PrivacyParams::approx(0.25, 1e-6).unwrap()).unwrap();
    assert!((s4 / s1 - 4.0).abs() < 1e-9);
}

#[test]
fn advanced_composition_beats_basic_beyond_a_few_uses() {
    // The quantitative reason PrivIncERM uses Theorem A.4 instead of A.3.
    let per = PrivacyParams::approx(0.01, 1e-9).unwrap();
    for k in [50usize, 200, 1000] {
        let adv = composition::advanced(k, &per, 1e-7).unwrap();
        let bas = composition::basic(k, &per).unwrap();
        assert!(
            adv.epsilon() < bas.epsilon(),
            "k={k}: advanced {} !< basic {}",
            adv.epsilon(),
            bas.epsilon()
        );
    }
}

#[test]
fn naive_recompute_budget_shrinks_like_sqrt_t() {
    // The §1 naive approach: per-step ε′ ∝ ε/√T — the origin of its √T
    // utility penalty.
    let total = PrivacyParams::approx(1.0, 1e-6).unwrap();
    let eps_at = |t: usize| {
        naive_recompute(
            Box::new(SquaredLoss),
            Box::new(NoisyGdSolver { iters: 4, beta: 0.1 }),
            Box::new(L2Ball::unit(4)),
            t,
            &total,
            NoiseRng::seed_from_u64(3),
        )
        .unwrap()
        .per_invocation()
        .epsilon()
    };
    let e100 = eps_at(100);
    let e400 = eps_at(400);
    assert!((e100 / e400 - 2.0).abs() < 0.01, "√T scaling violated: {}", e100 / e400);
}
