//! Fault injection for the `PIRS` session-snapshot format, mirroring the
//! WAL suites in `tests/recovery.rs`: flipped bytes, forged headers,
//! truncation at every byte prefix, oversized length fields — every
//! corruption must surface as a typed [`SnapshotError`], never a panic
//! and never a silently-wrong session.

use private_incremental_regression::prelude::*;
use proptest::prelude::*;

const SEED: u64 = 2024;
const SESSION: u64 = 0xFEED;

fn params() -> PrivacyParams {
    PrivacyParams::approx(1.0, 1e-6).unwrap()
}

fn point(d: usize, t: usize) -> DataPoint {
    let mut x = vec![0.0f64; d];
    x[t % d] = 0.6;
    DataPoint::new(x, 0.2)
}

/// A real snapshot of a mid-stream `PRIVINCREG1` session — the honest
/// artifact every fault below corrupts.
fn real_blob() -> Vec<u8> {
    let mut engine =
        ShardedEngine::new(EngineConfig { num_shards: 1, seed: SEED, parallel: false }).unwrap();
    engine.spawn_session(SESSION, &MechanismSpec::reg1_l2(3), 16, &params()).unwrap();
    for t in 0..5 {
        engine.observe(SESSION, &point(3, t)).unwrap();
    }
    engine.with_session(SESSION, |s| s.snapshot().unwrap()).unwrap()
}

/// Restore must answer every corruption with `Err`, never a panic. The
/// blob layout: 12-byte header (magic, version, reserved, body length),
/// body, 4-byte CRC trailer.
fn restore(bytes: &[u8]) -> Result<StreamSession, SnapshotError> {
    StreamSession::restore(bytes, SEED)
}

// ---------------------------------------------------------------------------
// Header forgery
// ---------------------------------------------------------------------------

#[test]
fn forged_magic_is_bad_magic() {
    let mut blob = real_blob();
    blob[0..4].copy_from_slice(b"PIRL"); // a WAL segment's magic, not a snapshot's
    assert!(matches!(restore(&blob), Err(SnapshotError::BadMagic { got }) if &got == b"PIRL"));
}

#[test]
fn future_version_is_unsupported() {
    let mut blob = real_blob();
    blob[4] = 3;
    assert!(matches!(restore(&blob), Err(SnapshotError::UnsupportedVersion { got: 3 })));
}

#[test]
fn legacy_version_1_blob_restores_without_the_fingerprint_check() {
    // Readers grow backwards: a blob written by a pre-fingerprint build
    // (version 1, no fingerprint field) still restores — under the old
    // trust-the-caller seed contract documented in KNOWN_FAILURES.md.
    let mut v1 = {
        let blob = real_blob();
        let mut v1 = Vec::with_capacity(blob.len() - 8);
        v1.extend_from_slice(&blob[..20]); // header + session id
        v1.extend_from_slice(&blob[28..]); // skip the fingerprint
        v1
    };
    v1[4] = 1;
    let body_len = u32::from_le_bytes(v1[8..12].try_into().unwrap()) - 8;
    v1[8..12].copy_from_slice(&body_len.to_le_bytes());
    refix_crc(&mut v1);
    let session = restore(&v1).unwrap();
    assert_eq!(session.id(), SESSION);
    assert_eq!(session.t(), 5);
    // No fingerprint to check, so even a wrong seed is (legacy) accepted.
    StreamSession::restore(&v1, SEED + 1).unwrap();
}

#[test]
fn nonzero_reserved_bytes_are_rejected() {
    for i in 5..8 {
        let mut blob = real_blob();
        blob[i] = 0x5A;
        assert!(matches!(restore(&blob), Err(SnapshotError::NonZeroReserved)), "reserved byte {i}");
    }
}

#[test]
fn oversized_body_length_is_rejected_before_allocation() {
    let mut blob = real_blob();
    // Claim a body far past the 64 MiB cap: the decoder must refuse the
    // *claim*, not attempt to read (or allocate) that much.
    blob[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(matches!(restore(&blob), Err(SnapshotError::BodyTooLarge { len: u32::MAX })));
}

#[test]
fn trailing_garbage_is_rejected() {
    let mut blob = real_blob();
    blob.push(0);
    assert!(matches!(restore(&blob), Err(SnapshotError::Malformed { .. })));
}

// ---------------------------------------------------------------------------
// Truncation at every byte prefix
// ---------------------------------------------------------------------------

/// Every strict prefix of a valid snapshot is a typed error — a torn
/// snapshot can never restore to a shorter-but-plausible session.
#[test]
fn every_truncation_prefix_is_a_typed_error() {
    let blob = real_blob();
    for cut in 0..blob.len() {
        match restore(&blob[..cut]) {
            Err(
                SnapshotError::Truncated { .. }
                | SnapshotError::BadMagic { .. }
                | SnapshotError::ChecksumMismatch { .. }
                | SnapshotError::Malformed { .. },
            ) => {}
            other => panic!("prefix of {cut} bytes: expected a typed error, got {other:?}"),
        }
    }
    // And the untouched blob still restores (the harness itself is sound).
    restore(&blob).unwrap();
}

// ---------------------------------------------------------------------------
// Bit flips
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Flip any single bit anywhere in the blob: restore must fail with
    /// a typed error (the CRC covers header and body, and header fields
    /// are validated before the CRC is even checked).
    #[test]
    fn every_bit_flip_is_detected(
        byte_frac in 0.0f64..1.0,
        bit in 0usize..8,
    ) {
        let mut blob = real_blob();
        let idx = ((blob.len() as f64) * byte_frac) as usize;
        let idx = idx.min(blob.len() - 1);
        blob[idx] ^= 1 << bit;
        // Any typed error is correct; a panic (not an Err) fails the test.
        prop_assert!(
            restore(&blob).is_err(),
            "flipped bit {bit} of byte {idx} went undetected"
        );
    }
}

// ---------------------------------------------------------------------------
// Checksummed forgeries: internally consistent, semantically wrong
// ---------------------------------------------------------------------------

/// Re-seal a tampered blob with a fresh CRC so only semantic validation
/// can catch it.
fn refix_crc(blob: &mut [u8]) {
    let crc_at = blob.len() - 4;
    let crc = pir_engine::wal::crc32(&blob[..crc_at]);
    blob[crc_at..].copy_from_slice(&crc.to_le_bytes());
}

/// Body offsets (after the 12-byte header): session_id, seed
/// fingerprint, t_max, t, then four f64 privacy fields — t sits at
/// header + 24.
const T_OFFSET: usize = 12 + 24;

#[test]
fn forged_step_count_fails_restore_validation() {
    // Claim the stream is further along than the serialized mechanism
    // state: the rebuilt session disagrees and restore refuses.
    let mut blob = real_blob();
    blob[T_OFFSET..T_OFFSET + 8].copy_from_slice(&6u64.to_le_bytes());
    refix_crc(&mut blob);
    let err = restore(&blob).unwrap_err();
    assert!(matches!(err, SnapshotError::Restore { .. }), "got {err:?}");
}

#[test]
fn step_count_past_horizon_is_malformed() {
    let mut blob = real_blob();
    blob[T_OFFSET..T_OFFSET + 8].copy_from_slice(&10_000u64.to_le_bytes());
    refix_crc(&mut blob);
    let err = restore(&blob).unwrap_err();
    assert!(matches!(err, SnapshotError::Malformed { .. }), "got {err:?}");
}

#[test]
fn forged_privacy_ledger_fails_restore_validation() {
    // spent_epsilon is the third f64 field (header + 4*8 fixed u64s).
    let off = 12 + 32 + 16;
    let mut blob = real_blob();
    blob[off..off + 8].copy_from_slice(&0.5f64.to_bits().to_le_bytes());
    refix_crc(&mut blob);
    let err = restore(&blob).unwrap_err();
    assert!(matches!(err, SnapshotError::Restore { .. }), "got {err:?}");
}

#[test]
fn forged_inner_length_is_malformed() {
    // The spec length prefix sits after the eight fixed u64/f64 fields;
    // inflating it (CRC re-fixed) must die in body decoding, not read
    // out of bounds.
    let off = 12 + 8 * 8;
    let mut blob = real_blob();
    blob[off..off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    refix_crc(&mut blob);
    let err = restore(&blob).unwrap_err();
    assert!(matches!(err, SnapshotError::Malformed { .. }), "got {err:?}");
}

/// A forged *session id* (CRC re-fixed) would respawn the mechanism
/// under the wrong per-session seed — which the seed fingerprint is
/// keyed to catch: the recorded digest was taken over
/// `(engine seed, original id)`, so it cannot match the forged id and
/// restore refuses before rebuilding anything.
#[test]
fn forged_session_id_trips_the_seed_fingerprint() {
    let mut blob = real_blob();
    blob[12..20].copy_from_slice(&0xBEEFu64.to_le_bytes());
    refix_crc(&mut blob);
    let err = restore(&blob).unwrap_err();
    assert!(matches!(err, SnapshotError::SeedMismatch { .. }), "got {err:?}");
}

/// Restoring an honest snapshot into a wrong-seeded engine fails loudly
/// with [`SnapshotError::SeedMismatch`] instead of silently regenerating
/// construction-time randomness (Mechanism 2's sketch) under the new
/// seed.
#[test]
fn wrong_engine_seed_is_refused_before_respawn() {
    let blob = real_blob();
    for wrong in [SEED + 1, SEED ^ 0xFFFF_FFFF, 0] {
        let err = StreamSession::restore(&blob, wrong).unwrap_err();
        assert!(matches!(err, SnapshotError::SeedMismatch { .. }), "seed {wrong}: got {err:?}");
    }
    // The honest seed still restores: the tripwire has no false positives.
    restore(&blob).unwrap();
}
