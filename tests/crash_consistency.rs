//! Crash-consistency proofs on the simulated power-loss disk — the
//! harness behind the storage fault rig's headline claim: **crash the
//! disk at every storage-op boundary, recover, and the replayed engine
//! is bit-identical to a reference engine replaying the durable
//! prefix**.
//!
//! Where `tests/recovery.rs` kills the *process* (buffered bytes reach
//! the kernel and survive), this suite kills the *machine*: a
//! [`SimDisk`] tracks buffered vs durable state per page, and
//! `crash()` drops, tears, or reorders everything that was never
//! fsynced. Each test scripts a workload, freezes the device at op
//! index `k` (`fail_from` — every storage call from `k` on fails, the
//! power-cut boundary), crashes, recovers through
//! [`recover_with_storage`], and pins the result to a fault-free
//! reference:
//!
//! - under `DropUnsynced` + `FsyncPolicy::PerRecord` the durable prefix
//!   is *exactly* the acknowledged appends — recovery must replay that
//!   many commands, no more, no fewer, with bit-identical replies;
//! - under `TornTail` / `ScramblePages` the unsynced suffix survives
//!   partially (torn cut, garbage page, reordered page loss) — recovery
//!   must either land on a correct prefix at or past the last explicit
//!   sync, or fail with a typed [`WalError`]; never panic, never
//!   silently serve wrong bits;
//! - the full engine path (WAL + spill tier + mid-stream checkpoint)
//!   must never lose an *acknowledged* command, across every crash
//!   window of the manifest tmp→fsync→rename dance and segment purge.

use pir_engine::wal::{RECORD_OVERHEAD, SEGMENT_HEADER_LEN};
use private_incremental_regression::prelude::*;
use std::io;
use std::path::Path;
use std::time::Duration;

/// The log directory on the simulated disk. Purely virtual: `SimDisk`
/// never touches the host filesystem.
const WAL_DIR: &str = "/wal";

fn params() -> PrivacyParams {
    PrivacyParams::approx(1.0, 1e-6).unwrap()
}

fn point(d: usize, t: usize, session: u64) -> DataPoint {
    let mut x = vec![0.0f64; d];
    x[t % d] = 0.7;
    x[(t + session as usize) % d] += 0.2;
    DataPoint::new(x, 0.25)
}

fn fresh_engine(num_shards: usize, seed: u64) -> ShardedEngine {
    ShardedEngine::new(EngineConfig { num_shards, seed, parallel: false }).unwrap()
}

/// A small mixed stream over two reg1 sessions: opens, observes, a
/// batch — every record shape the writer produces.
fn wal_stream(d: usize) -> Vec<Command> {
    let spec = MechanismSpec::reg1_l2(d);
    let mut cmds = Vec::new();
    for sid in [1u64, 2] {
        cmds.push(Command::Open {
            session_id: sid,
            spec: spec.clone(),
            t_max: 32,
            params: params(),
        });
    }
    for t in 0..3usize {
        for sid in [1u64, 2] {
            cmds.push(Command::Observe { session_id: sid, point: point(d, t, sid) });
        }
    }
    cmds.push(Command::ObserveBatch {
        session_id: 1,
        points: (3..5).map(|t| point(d, t, 1)).collect(),
    });
    cmds
}

/// `WalOptions` on a `SimDisk`, per-record durability (so "append
/// returned Ok" and "record survives power loss" coincide exactly).
fn sim_options(disk: &SimDisk, segment_bytes: u64) -> WalOptions {
    WalOptions {
        fsync: FsyncPolicy::PerRecord,
        segment_bytes,
        storage: disk.handle(),
        ..WalOptions::new(WAL_DIR)
    }
}

/// Append `cmds` to `shard`'s log until the disk says no; the count of
/// acknowledged appends. The writer is dropped without `finish()` —
/// the crash preempts any clean shutdown.
fn append_until_failure(options: &WalOptions, shard: u32, cmds: &[Command]) -> usize {
    let Ok(mut w) = WalWriter::create(options, shard) else {
        return 0;
    };
    let mut n_ok = 0;
    for cmd in cmds {
        if w.append(cmd).is_err() {
            break;
        }
        n_ok += 1;
    }
    n_ok
}

/// Recover the crashed disk into `engine`, collecting replayed replies.
fn recover_collect(
    disk: &SimDisk,
    engine: &mut ShardedEngine,
) -> Result<(RecoveryReport, Vec<Reply>), WalError> {
    let mut replayed = Vec::new();
    let report = recover_with_storage(&disk.handle(), Path::new(WAL_DIR), engine, |_, r| {
        replayed.push(r.clone())
    })?;
    Ok((report, replayed))
}

/// The per-session state image: `PIRS` snapshot bytes for each id (or
/// `None` where the session does not exist). Two engines with equal
/// images are bit-identical for every future command on those sessions.
fn session_image(engine: &ShardedEngine, sids: &[u64]) -> Vec<Option<Vec<u8>>> {
    sids.iter().map(|&sid| engine.with_session(sid, |s| s.snapshot().unwrap())).collect()
}

// ---------------------------------------------------------------------------
// The headline enumeration: power loss at every storage op
// ---------------------------------------------------------------------------

/// Crash at every op boundary, across a single-segment log and a
/// rotating chain: recovery replays exactly the acknowledged prefix,
/// bit-identically, and the recovered engine continues in lockstep with
/// a reference engine fed the same prefix.
#[test]
fn crash_at_every_op_recovers_exactly_the_durable_prefix() {
    let seed = 1217;
    let d = 2;
    let cmds = wal_stream(d);
    let mut reference_full = fresh_engine(1, seed);
    let ref_replies: Vec<Reply> = cmds.iter().map(|c| reference_full.apply(c)).collect();

    // Size the rotating config to two records per segment, forcing the
    // chain through several files (crash points inside segment creation
    // and dir syncs, not just appends).
    let two_records: u64 = cmds
        .iter()
        .take(2)
        .map(|c| (RECORD_OVERHEAD + pir_engine::wire::encode_command(c).unwrap().len()) as u64)
        .sum();
    let configs =
        [("single-segment", 64 << 20), ("rotating", SEGMENT_HEADER_LEN as u64 + two_records)];

    for (name, segment_bytes) in configs {
        // Fault-free probe: how many storage ops does the workload take?
        let probe = SimDisk::new(11, CrashProfile::DropUnsynced);
        let n_all = append_until_failure(&sim_options(&probe, segment_bytes), 0, &cmds);
        assert_eq!(n_all, cmds.len(), "{name}: probe run must append everything");
        let total = probe.op_count();
        assert!(total > 0);

        for k in 0..=total {
            let disk = SimDisk::new(11, CrashProfile::DropUnsynced);
            disk.fail_from(k, io::ErrorKind::Other);
            let n_ok = append_until_failure(&sim_options(&disk, segment_bytes), 0, &cmds);
            disk.crash();

            // Recover into a *different* shard count: durability must
            // not depend on the sharding that produced the log.
            let mut engine = fresh_engine(2, seed);
            let (report, replayed) = recover_collect(&disk, &mut engine)
                .unwrap_or_else(|e| panic!("{name}, crash at op {k}: recovery failed: {e}"));
            assert_eq!(
                report.commands as usize, n_ok,
                "{name}, crash at op {k}: durable prefix must equal acknowledged appends"
            );
            assert_eq!(
                replayed,
                ref_replies[..n_ok],
                "{name}, crash at op {k}: replayed replies diverged"
            );

            // Bit-identical state, and bit-identical future: the
            // recovered engine tracks a reference prefix engine.
            let mut reference = fresh_engine(2, seed);
            for cmd in &cmds[..n_ok] {
                reference.apply(cmd);
            }
            assert_eq!(
                session_image(&engine, &[1, 2]),
                session_image(&reference, &[1, 2]),
                "{name}, crash at op {k}: session state diverged"
            );
            let next = Command::Observe { session_id: 1, point: point(d, 9, 1) };
            assert_eq!(
                engine.apply(&next),
                reference.apply(&next),
                "{name}, crash at op {k}: post-recovery releases diverged"
            );
        }
    }
}

/// Two shards interleaving appends on one disk: a crash at any op
/// leaves each shard's chain at its own acknowledged prefix, and
/// recovery replays both prefixes (lower epoch first) with nothing
/// crossed between chains.
#[test]
fn multi_shard_interleaved_crash_replays_per_shard_prefixes() {
    let seed = 5417;
    let d = 2;
    let spec = MechanismSpec::reg1_l2(d);
    let stream = |sid: u64| -> Vec<Command> {
        let mut cmds = vec![Command::Open {
            session_id: sid,
            spec: spec.clone(),
            t_max: 32,
            params: params(),
        }];
        for t in 0..4usize {
            cmds.push(Command::Observe { session_id: sid, point: point(d, t, sid) });
        }
        cmds
    };
    let (s0, s1) = (stream(10), stream(11));

    // Interleave strictly: s0[i] to shard 0, then s1[i] to shard 1.
    // After the first failure both writers are dead (the whole device
    // failed), so acknowledged appends form a per-shard prefix.
    let run = |disk: &SimDisk| -> (usize, usize) {
        let options = sim_options(disk, 64 << 20);
        let Ok(mut w0) = WalWriter::create(&options, 0) else {
            return (0, 0);
        };
        let Ok(mut w1) = WalWriter::create(&options, 1) else {
            return (0, 0);
        };
        let (mut n0, mut n1) = (0, 0);
        for i in 0..s0.len() {
            if w0.append(&s0[i]).is_err() {
                break;
            }
            n0 += 1;
            if w1.append(&s1[i]).is_err() {
                break;
            }
            n1 += 1;
        }
        (n0, n1)
    };

    let probe = SimDisk::new(23, CrashProfile::DropUnsynced);
    assert_eq!(run(&probe), (s0.len(), s1.len()));
    let total = probe.op_count();

    // Replay order is (epoch, shard): writer 1 was created after writer
    // 0 saw the disk, so its epoch is strictly larger — shard 0's whole
    // prefix replays before shard 1's.
    let mut reference = fresh_engine(1, seed);
    let ref0: Vec<Reply> = s0.iter().map(|c| reference.apply(c)).collect();
    let ref1: Vec<Reply> = s1.iter().map(|c| reference.apply(c)).collect();

    for k in 0..=total {
        let disk = SimDisk::new(23, CrashProfile::DropUnsynced);
        disk.fail_from(k, io::ErrorKind::Other);
        let (n0, n1) = run(&disk);
        disk.crash();

        let mut engine = fresh_engine(2, seed);
        let (report, replayed) = recover_collect(&disk, &mut engine)
            .unwrap_or_else(|e| panic!("crash at op {k}: recovery failed: {e}"));
        assert_eq!(report.commands as usize, n0 + n1, "crash at op {k}");
        let mut expected: Vec<Reply> = ref0[..n0].to_vec();
        expected.extend_from_slice(&ref1[..n1]);
        assert_eq!(replayed, expected, "crash at op {k}: cross-shard replay order broke");
    }
}

// ---------------------------------------------------------------------------
// The full engine path: WAL + spill tier + mid-stream checkpoint
// ---------------------------------------------------------------------------

/// Crash the device at every op under the production stack — pipelined
/// engine, spill tier at `resident_cap: 1`, an explicit checkpoint in
/// the middle of the stream (every crash window of the manifest
/// tmp→fsync→rename→purge sequence is hit). The contract: **no
/// acknowledged command is ever lost**, and the recovered state is the
/// reference replay of a durable prefix at least that long.
#[test]
fn engine_with_spill_and_checkpoint_never_loses_an_acknowledged_command() {
    let seed = 907;
    let d = 2;
    let spec = MechanismSpec::reg1_l2(d);
    let mut cmds = Vec::new();
    for sid in [1u64, 2, 3] {
        cmds.push(Command::Open {
            session_id: sid,
            spec: spec.clone(),
            t_max: 32,
            params: params(),
        });
    }
    for t in 0..2usize {
        for sid in [1u64, 2, 3] {
            cmds.push(Command::Observe { session_id: sid, point: point(d, t, sid) });
        }
    }
    let checkpoint_after = cmds.len();
    for sid in [1u64, 2, 3] {
        cmds.push(Command::Observe { session_id: sid, point: point(d, 2, sid) });
    }

    // One run against `disk`: sequential submits (each reply awaited, so
    // the storage-op order is deterministic), a checkpoint after
    // `checkpoint_after` commands, then the tail. Returns the replies;
    // a `None` engine (construction failed at a tiny `k`) returns none.
    let run = |disk: &SimDisk| -> Vec<Reply> {
        let config = IngressConfig { num_shards: 1, seed, queue_depth: 64 };
        let wal_opts = sim_options(disk, 64 << 20);
        let spill_opts =
            SpillOptions { resident_cap: 1, storage: disk.handle(), ..SpillOptions::new("/spill") };
        let Ok((handle, _)) = EngineHandle::with_wal_and_spill(config, &wal_opts, &spill_opts)
        else {
            return Vec::new();
        };
        let submit = handle.submit_handle();
        let mut replies = Vec::new();
        for (i, cmd) in cmds.iter().enumerate() {
            match submit.submit(cmd.clone()) {
                Ok(ticket) => replies.push(ticket.wait()),
                Err(e) => replies.push(Reply::Err(e)),
            }
            if i + 1 == checkpoint_after {
                // May fail at any interior op; failure must never
                // corrupt the log (that is what this test proves).
                let _ = handle.checkpoint();
            }
        }
        handle.close();
        replies
    };

    let probe = SimDisk::new(31, CrashProfile::DropUnsynced);
    let probe_replies = run(&probe);
    assert!(
        probe_replies.iter().all(|r| !matches!(r, Reply::Err(_))),
        "probe run must be error-free: {probe_replies:?}"
    );
    let total = probe.op_count();

    let mut reference_full = fresh_engine(1, seed);
    let ref_replies: Vec<Reply> = cmds.iter().map(|c| reference_full.apply(c)).collect();

    for k in 0..=total {
        let disk = SimDisk::new(31, CrashProfile::DropUnsynced);
        disk.fail_from(k, io::ErrorKind::Other);
        let replies = run(&disk);
        disk.crash();

        // Acknowledged commands form a prefix: once the device fails,
        // every later log attempt fails too.
        let n_ok = replies.iter().take_while(|r| !matches!(r, Reply::Err(_))).count();
        for (i, r) in replies.iter().enumerate().skip(n_ok) {
            assert!(
                matches!(r, Reply::Err(_)),
                "crash at op {k}: reply {i} succeeded after a device failure: {r:?}"
            );
        }
        assert_eq!(replies[..n_ok], ref_replies[..n_ok], "crash at op {k}: live replies diverged");

        let mut engine = fresh_engine(1, seed);
        let (_report, _) = recover_collect(&disk, &mut engine)
            .unwrap_or_else(|e| panic!("crash at op {k}: recovery failed: {e}"));

        // The recovered state is a reference replay of some durable
        // prefix `m`: at least every acknowledged command (`m ≥ n_ok` —
        // no lost acks), at most one more (the command whose append
        // landed but whose execution hit the dead device).
        let image = session_image(&engine, &[1, 2, 3]);
        let mut reference = fresh_engine(1, seed);
        for cmd in &cmds[..n_ok] {
            reference.apply(cmd);
        }
        let mut matched = image == session_image(&reference, &[1, 2, 3]);
        if !matched && n_ok < cmds.len() {
            reference.apply(&cmds[n_ok]);
            matched = image == session_image(&reference, &[1, 2, 3]);
        }
        assert!(
            matched,
            "crash at op {k}: recovered state is not the reference replay of \
             {n_ok} or {} commands",
            n_ok + 1
        );
    }
}

// ---------------------------------------------------------------------------
// Torn and reordered unsynced writes (seeded profiles)
// ---------------------------------------------------------------------------

/// Build a 12-command log with an explicit `sync()` after the first
/// `floor` commands and an unsynced suffix, then crash under `profile`.
/// Returns the reference replies and the crashed disk.
fn unsynced_tail_log(seed: u64, profile: CrashProfile, floor: usize) -> (Vec<Command>, SimDisk) {
    let spec = MechanismSpec::Trivial { set: SetSpec::unit_l2(2) };
    let mut cmds = vec![Command::Open { session_id: 1, spec, t_max: 64, params: params() }];
    for t in 0..11usize {
        cmds.push(Command::Observe { session_id: 1, point: point(2, t, 1) });
    }
    let disk = SimDisk::new(seed, profile);
    // A huge interval: no automatic syncs, but segment creation still
    // syncs the directory entry — only record bytes are at risk.
    let options = WalOptions {
        fsync: FsyncPolicy::Interval { every: 100_000 },
        storage: disk.handle(),
        ..WalOptions::new(WAL_DIR)
    };
    let mut w = WalWriter::create(&options, 0).unwrap();
    for (i, cmd) in cmds.iter().enumerate() {
        w.append(cmd).unwrap();
        if i + 1 == floor {
            w.sync().unwrap();
        }
    }
    drop(w); // no finish(): the suffix stays unsynced
    disk.crash();
    (cmds, disk)
}

/// Shared oracle for the torn/scrambled sweeps: recovery either lands
/// on a correct prefix at or past the synced floor, or fails with a
/// typed error — never panics, never serves wrong bits.
fn assert_prefix_or_loud_failure(profile: CrashProfile, seeds: std::ops::Range<u64>) {
    let floor = 6;
    let mut recovered_fine = 0usize;
    let mut failed_loud = 0usize;
    for seed in seeds {
        let (cmds, disk) = unsynced_tail_log(seed, profile, floor);
        let mut reference = fresh_engine(1, 1);
        let ref_replies: Vec<Reply> = cmds.iter().map(|c| reference.apply(c)).collect();

        let mut engine = fresh_engine(1, 1);
        match recover_collect(&disk, &mut engine) {
            Ok((report, replayed)) => {
                let n = report.commands as usize;
                assert!(
                    (floor..=cmds.len()).contains(&n),
                    "{profile:?} seed {seed}: recovered {n} commands, \
                     below the synced floor {floor}"
                );
                assert_eq!(
                    replayed,
                    ref_replies[..n],
                    "{profile:?} seed {seed}: surviving prefix replayed wrong bits"
                );
                recovered_fine += 1;
            }
            Err(e) => {
                // Garbage inside a surviving page is a loud, typed
                // refusal — the one honest answer when the tail cannot
                // be proven whole.
                assert!(!e.to_string().is_empty());
                failed_loud += 1;
            }
        }
    }
    // The sweep must actually exercise the success path; the seeds are
    // fixed, so this is deterministic, not flaky.
    assert!(
        recovered_fine > 0,
        "{profile:?}: no seed recovered cleanly ({failed_loud} loud failures)"
    );
}

/// Torn tails: a seeded cut through the unsynced suffix, with the torn
/// page possibly garbage-filled.
#[test]
fn torn_tail_crashes_recover_a_synced_prefix_or_fail_loudly() {
    assert_prefix_or_loud_failure(CrashProfile::TornTail, 0..24);
}

/// Reordered writes: a seeded subset of unsynced pages survives, the
/// rest read as zeros.
#[test]
fn scrambled_page_crashes_recover_a_synced_prefix_or_fail_loudly() {
    assert_prefix_or_loud_failure(CrashProfile::ScramblePages, 0..24);
}

/// `KeepAll` sanity: a process kill (kernel survives, device fine)
/// keeps every buffered byte — recovery replays the full history even
/// though nothing was ever fsynced.
#[test]
fn kill_crash_without_power_loss_keeps_all_buffered_records() {
    let spec = MechanismSpec::Trivial { set: SetSpec::unit_l2(2) };
    let mut cmds = vec![Command::Open { session_id: 1, spec, t_max: 64, params: params() }];
    for t in 0..7usize {
        cmds.push(Command::Observe { session_id: 1, point: point(2, t, 1) });
    }
    let disk = SimDisk::new(3, CrashProfile::KeepAll);
    let options =
        WalOptions { fsync: FsyncPolicy::Off, storage: disk.handle(), ..WalOptions::new(WAL_DIR) };
    let mut w = WalWriter::create(&options, 0).unwrap();
    for cmd in &cmds {
        w.append(cmd).unwrap();
    }
    drop(w);
    disk.crash();

    let mut engine = fresh_engine(1, 1);
    let (report, _) = recover_collect(&disk, &mut engine).unwrap();
    assert_eq!(report.commands as usize, cmds.len());
    assert_eq!(report.torn_tails, 0);
}

// ---------------------------------------------------------------------------
// WAL failure policies
// ---------------------------------------------------------------------------

/// `Retry` rides out a transient fault burst with zero loss: every
/// append is acknowledged, the retry counter shows the fight, and
/// recovery replays the complete stream.
#[test]
fn retry_policy_rides_through_transient_faults_with_zero_loss() {
    let cmds = wal_stream(2);
    // Probe where segment creation ends, so the fault burst lands
    // squarely inside the append stream.
    let probe = SimDisk::new(41, CrashProfile::DropUnsynced);
    drop(WalWriter::create(&sim_options(&probe, 64 << 20), 0).unwrap());
    let creation_ops = probe.op_count();

    let disk = SimDisk::new(41, CrashProfile::DropUnsynced);
    disk.fail_window(creation_ops + 3, 4, io::ErrorKind::Interrupted);
    let options = WalOptions {
        failure_policy: WalFailurePolicy::Retry { attempts: 8, backoff: Duration::from_millis(1) },
        ..sim_options(&disk, 64 << 20)
    };
    let mut w = WalWriter::create(&options, 0).unwrap();
    let mut retries = 0u64;
    for cmd in &cmds {
        w.append(cmd).unwrap_or_else(|e| panic!("retry policy must absorb the burst: {e}"));
        retries += w.take_retries();
    }
    assert!(retries > 0, "the fault window must actually have been hit");
    w.finish().unwrap();
    disk.crash();

    let mut engine = fresh_engine(1, 77);
    let (report, replayed) = recover_collect(&disk, &mut engine).unwrap();
    assert_eq!(report.commands as usize, cmds.len(), "zero loss under transient faults");
    let mut reference = fresh_engine(1, 77);
    let ref_replies: Vec<Reply> = cmds.iter().map(|c| reference.apply(c)).collect();
    assert_eq!(replayed, ref_replies);
}

/// `DegradeToUnlogged` on a dead device: the triggering command is
/// answered with an in-band WAL error, the shard keeps serving
/// unlogged (loud counters), checkpoints refuse to lie, and recovery
/// after the crash yields exactly the pre-degradation prefix.
#[test]
fn degrade_to_unlogged_keeps_serving_and_counts_the_damage() {
    let seed = 640;
    let d = 2;
    let disk = SimDisk::new(53, CrashProfile::DropUnsynced);
    let options = WalOptions {
        failure_policy: WalFailurePolicy::DegradeToUnlogged {
            attempts: 1,
            backoff: Duration::from_millis(1),
        },
        ..sim_options(&disk, 64 << 20)
    };
    let config = IngressConfig { num_shards: 1, seed, queue_depth: 64 };
    let (handle, _) = EngineHandle::with_wal(config, &options).unwrap();
    let submit = handle.submit_handle();

    let spec = MechanismSpec::reg1_l2(d);
    let mut logged = Vec::new();
    logged.push(Command::Open { session_id: 1, spec, t_max: 32, params: params() });
    for t in 0..3usize {
        logged.push(Command::Observe { session_id: 1, point: point(d, t, 1) });
    }
    for cmd in &logged {
        let reply = submit.submit(cmd.clone()).unwrap().wait();
        assert!(!matches!(reply, Reply::Err(_)), "healthy device: {reply:?}");
    }

    // The device dies now. The next command exhausts the retry envelope
    // and degrades the shard — answered in-band, not executed.
    disk.fail_from(disk.op_count(), io::ErrorKind::Other);
    let trigger = Command::Observe { session_id: 1, point: point(d, 3, 1) };
    let reply = submit.submit(trigger).unwrap().wait();
    match reply {
        Reply::Err(EngineError::Wal { reason }) => {
            assert!(reason.contains("degraded"), "degradation must be named: {reason}")
        }
        other => panic!("expected an in-band WAL warning, got {other:?}"),
    }

    // The shard serves on, unlogged and loudly counted.
    let unlogged = 3usize;
    for t in 4..4 + unlogged {
        let reply = submit
            .submit(Command::Observe { session_id: 1, point: point(d, t, 1) })
            .unwrap()
            .wait();
        assert!(
            matches!(reply, Reply::Releases { .. }),
            "degraded shard must keep serving: {reply:?}"
        );
    }
    // No retries here: on a dead device the rollback truncate fails
    // too, which poisons immediately rather than retrying on top of a
    // possibly-torn record (the transient-burst test covers retries).
    let stats = submit.wal_stats();
    assert_eq!(stats.degraded_shards, 1);
    assert_eq!(stats.unlogged_commands, unlogged as u64);

    // A checkpoint now would cover commands that were never logged —
    // it must refuse rather than write a lying manifest.
    assert!(matches!(handle.checkpoint(), Err(EngineError::Wal { .. })));

    handle.close();
    disk.crash();
    let mut engine = fresh_engine(1, seed);
    let (report, replayed) = recover_collect(&disk, &mut engine).unwrap();
    assert_eq!(
        report.commands as usize,
        logged.len(),
        "recovery yields exactly the pre-degradation prefix"
    );
    let mut reference = fresh_engine(1, seed);
    let ref_replies: Vec<Reply> = logged.iter().map(|c| reference.apply(c)).collect();
    assert_eq!(replayed, ref_replies);
}

/// `Poison` (the default) on a dead device: the failure and every
/// subsequent command are refused in-band; nothing is silently served
/// without durability, and the engine shuts down cleanly.
#[test]
fn poison_policy_fails_loudly_in_band_and_stays_poisoned() {
    let seed = 641;
    let d = 2;
    let disk = SimDisk::new(59, CrashProfile::DropUnsynced);
    let options = sim_options(&disk, 64 << 20);
    let config = IngressConfig { num_shards: 1, seed, queue_depth: 64 };
    let (handle, _) = EngineHandle::with_wal(config, &options).unwrap();
    let submit = handle.submit_handle();

    let spec = MechanismSpec::reg1_l2(d);
    let open = Command::Open { session_id: 1, spec, t_max: 32, params: params() };
    assert!(!matches!(submit.submit(open).unwrap().wait(), Reply::Err(_)));

    disk.fail_from(disk.op_count(), io::ErrorKind::Other);
    for t in 0..4usize {
        let reply = submit
            .submit(Command::Observe { session_id: 1, point: point(d, t, 1) })
            .unwrap()
            .wait();
        assert!(
            matches!(reply, Reply::Err(EngineError::Wal { .. })),
            "poisoned shard must refuse in-band, got {reply:?}"
        );
    }
    let stats = submit.wal_stats();
    assert_eq!(stats.degraded_shards, 0);
    assert_eq!(stats.unlogged_commands, 0);
    handle.close();
}

// ---------------------------------------------------------------------------
// Auto-checkpoint scheduling
// ---------------------------------------------------------------------------

/// Wait (bounded) until `f()` is true; panic with `what` otherwise.
fn wait_until(what: &str, f: impl Fn() -> bool) {
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while !f() {
        assert!(std::time::Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// The command-count policy fires on its own: the coordinator writes a
/// manifest mid-run, and the compacted log still recovers the full
/// state bit-identically.
#[test]
fn auto_checkpoint_fires_on_command_count_and_log_still_recovers() {
    let seed = 808;
    let d = 2;
    let disk = SimDisk::new(67, CrashProfile::DropUnsynced);
    let options = WalOptions {
        auto_checkpoint: Some(CheckpointPolicy::by_command_count(4)),
        ..sim_options(&disk, 64 << 20)
    };
    let config = IngressConfig { num_shards: 1, seed, queue_depth: 64 };
    let (handle, _) = EngineHandle::with_wal(config, &options).unwrap();
    let submit = handle.submit_handle();

    let spec = MechanismSpec::reg1_l2(d);
    let mut cmds = vec![Command::Open { session_id: 1, spec, t_max: 32, params: params() }];
    for t in 0..9usize {
        cmds.push(Command::Observe { session_id: 1, point: point(d, t, 1) });
    }
    for cmd in &cmds {
        let reply = submit.submit(cmd.clone()).unwrap().wait();
        assert!(!matches!(reply, Reply::Err(_)), "{reply:?}");
    }
    wait_until("an auto-checkpoint", || submit.wal_stats().auto_checkpoints >= 1);
    assert_eq!(submit.wal_stats().auto_checkpoint_failures, 0);
    handle.close();

    // Clean shutdown (no crash): the compacted log — manifest plus
    // whatever tail the coordinator left — replays to the full state.
    let mut engine = fresh_engine(1, seed);
    recover_collect(&disk, &mut engine).unwrap();
    let mut reference = fresh_engine(1, seed);
    for cmd in &cmds {
        reference.apply(cmd);
    }
    assert_eq!(session_image(&engine, &[1]), session_image(&reference, &[1]));
}

/// A failing auto-checkpoint (a session that cannot snapshot) backs
/// off, counts failures, and never purges a byte of the log.
#[test]
fn failed_auto_checkpoints_back_off_and_never_purge() {
    let seed = 809;
    let d = 2;
    let disk = SimDisk::new(71, CrashProfile::DropUnsynced);
    let options = WalOptions {
        auto_checkpoint: Some(CheckpointPolicy::by_command_count(3)),
        ..sim_options(&disk, 64 << 20)
    };
    let config = IngressConfig { num_shards: 1, seed, queue_depth: 64 };
    let (handle, _) = EngineHandle::with_wal(config, &options).unwrap();
    let submit = handle.submit_handle();

    // `PrivIncErm` sessions cannot snapshot — every checkpoint attempt
    // must fail, loudly, without touching the log.
    let spec = MechanismSpec::erm_squared(d, TauRule::Fixed(4));
    let mut cmds = vec![Command::Open { session_id: 1, spec, t_max: 32, params: params() }];
    for t in 0..5usize {
        cmds.push(Command::Observe { session_id: 1, point: point(d, t, 1) });
    }
    for cmd in &cmds {
        let reply = submit.submit(cmd.clone()).unwrap().wait();
        assert!(!matches!(reply, Reply::Err(_)), "{reply:?}");
    }
    wait_until("a counted checkpoint failure", || submit.wal_stats().auto_checkpoint_failures >= 1);
    assert_eq!(submit.wal_stats().auto_checkpoints, 0);
    handle.close();

    // Nothing was purged: the untouched log replays every command.
    let mut engine = fresh_engine(1, seed);
    let (report, _) = recover_collect(&disk, &mut engine).unwrap();
    assert_eq!(report.commands as usize, cmds.len(), "a failed checkpoint must never purge");
}
