//! The borrowed-buffer-equals-allocating law: every `_into` entry point
//! introduced by the zero-allocation release path must produce output
//! **bit-for-bit identical** to its allocating counterpart — under a fixed
//! [`NoiseRng`] seed, at every layer: the tree mechanism (`pir-continual`),
//! the hybrid mechanism, all three paper mechanisms (`pir-core`), and the
//! sharded engine (`pir-engine`). This is what makes buffer reuse a pure
//! allocator optimization with no semantic (or privacy) consequences.

use private_incremental_regression::prelude::*;
use proptest::prelude::*;

/// A valid (§2-normalized) stream: ‖x‖ ≤ 0.9, |y| ≤ 1.
fn stream(n: usize, d: usize, seed: u64) -> Vec<DataPoint> {
    let mut rng = NoiseRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let x: Vec<f64> = (0..d).map(|_| rng.uniform_in(-1.0, 1.0)).collect();
            let norm = x.iter().map(|v| v * v).sum::<f64>().sqrt();
            let x: Vec<f64> = x.iter().map(|v| 0.9 * v / norm.max(1.0)).collect();
            let y = (0.7 * x[0]).clamp(-1.0, 1.0);
            DataPoint::new(x, y)
        })
        .collect()
}

/// Drive one mechanism through `observe` and a twin (same seed) through
/// `observe_into` with a single reused release buffer; the sequences must
/// agree exactly.
fn assert_observe_into_equivalent(
    mut allocating: Box<dyn IncrementalMechanism>,
    mut reusing: Box<dyn IncrementalMechanism>,
    points: &[DataPoint],
) {
    let d = allocating.dim();
    let mut buf = vec![f64::NAN; d];
    for (t, z) in points.iter().enumerate() {
        let fresh = allocating.observe(z).unwrap();
        reusing.observe_into(z, &mut buf).unwrap();
        assert_eq!(fresh, buf, "release diverged at t={}", t + 1);
    }
    assert_eq!(allocating.t(), reusing.t());
}

fn params() -> PrivacyParams {
    PrivacyParams::approx(1.0, 1e-6).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn tree_update_into_equals_update(seed in any::<u64>(), d in 1usize..6) {
        let p = params();
        let mut alloc = TreeMechanism::new(d, 32, 1.0, &p, NoiseRng::seed_from_u64(seed)).unwrap();
        let mut reuse = TreeMechanism::new(d, 32, 1.0, &p, NoiseRng::seed_from_u64(seed)).unwrap();
        let mut buf = vec![f64::NAN; d];
        let mut item_rng = NoiseRng::seed_from_u64(seed.wrapping_add(1));
        for t in 0..32 {
            let v: Vec<f64> = (0..d).map(|_| item_rng.uniform_in(-0.3, 0.3)).collect();
            let fresh = alloc.update(&v).unwrap();
            reuse.update_into(&v, &mut buf).unwrap();
            prop_assert_eq!(&fresh, &buf, "t={}", t + 1);
            // query_into agrees with query on both twins.
            let mut q = vec![f64::NAN; d];
            reuse.query_into(&mut q).unwrap();
            prop_assert_eq!(&alloc.query(), &q);
        }
    }

    #[test]
    fn tree_update_batch_into_equals_update_batch(seed in any::<u64>(), chunk in 1usize..9) {
        let p = params();
        let d = 3;
        let mut alloc = TreeMechanism::new(d, 24, 1.0, &p, NoiseRng::seed_from_u64(seed)).unwrap();
        let mut reuse = TreeMechanism::new(d, 24, 1.0, &p, NoiseRng::seed_from_u64(seed)).unwrap();
        let mut item_rng = NoiseRng::seed_from_u64(seed.wrapping_add(1));
        let items: Vec<Vec<f64>> = (0..24)
            .map(|_| (0..d).map(|_| item_rng.uniform_in(-0.3, 0.3)).collect())
            .collect();
        for block in items.chunks(chunk) {
            let refs: Vec<&[f64]> = block.iter().map(Vec::as_slice).collect();
            let fresh = alloc.update_batch(&refs).unwrap();
            let mut flat = vec![f64::NAN; refs.len() * d];
            reuse.update_batch_into(&refs, &mut flat).unwrap();
            for (i, f) in fresh.iter().enumerate() {
                prop_assert_eq!(f.as_slice(), &flat[i * d..(i + 1) * d]);
            }
        }
    }

    #[test]
    fn hybrid_update_into_equals_update(seed in any::<u64>()) {
        let p = params();
        let d = 2;
        let mut alloc = HybridMechanism::new(d, 1.0, &p, NoiseRng::seed_from_u64(seed)).unwrap();
        let mut reuse = HybridMechanism::new(d, 1.0, &p, NoiseRng::seed_from_u64(seed)).unwrap();
        let mut buf = vec![f64::NAN; d];
        let mut item_rng = NoiseRng::seed_from_u64(seed.wrapping_add(1));
        // 40 items crosses several epoch boundaries (1, 1, 2, 4, 8, 16, …).
        for t in 0..40 {
            let v: Vec<f64> = (0..d).map(|_| item_rng.uniform_in(-0.5, 0.5)).collect();
            let fresh = alloc.update(&v).unwrap();
            reuse.update_into(&v, &mut buf).unwrap();
            prop_assert_eq!(&fresh, &buf, "t={}", t + 1);
            let mut q = vec![f64::NAN; d];
            reuse.query_into(&mut q).unwrap();
            prop_assert_eq!(&alloc.query(), &q);
        }
    }

    #[test]
    fn reg1_observe_into_equals_observe(seed in any::<u64>()) {
        let p = params();
        let build = || {
            let mut rng = NoiseRng::seed_from_u64(seed);
            Box::new(PrivIncReg1::new(
                Box::new(L2Ball::unit(4)),
                16,
                &p,
                &mut rng,
                PrivIncReg1Config::default(),
            )
            .unwrap()) as Box<dyn IncrementalMechanism>
        };
        let points = stream(16, 4, seed.wrapping_add(1));
        assert_observe_into_equivalent(build(), build(), &points);
    }

    #[test]
    fn reg1_cold_start_observe_into_equals_observe(seed in any::<u64>()) {
        // warm_start: false exercises the zero-start scratch path.
        let p = params();
        let config = PrivIncReg1Config { warm_start: false, ..Default::default() };
        let build = || {
            let mut rng = NoiseRng::seed_from_u64(seed);
            Box::new(PrivIncReg1::new(Box::new(L2Ball::unit(3)), 12, &p, &mut rng, config).unwrap())
                as Box<dyn IncrementalMechanism>
        };
        let points = stream(12, 3, seed.wrapping_add(1));
        assert_observe_into_equivalent(build(), build(), &points);
    }

    #[test]
    fn reg2_observe_into_equals_observe(seed in any::<u64>()) {
        let p = params();
        let d = 20;
        let config = PrivIncReg2Config { m_override: Some(5), lift_iters: 60, ..Default::default() };
        let build = || {
            let mut rng = NoiseRng::seed_from_u64(seed);
            Box::new(PrivIncReg2::new(Box::new(L1Ball::unit(d)), 2.0, 12, &p, &mut rng, config)
                .unwrap()) as Box<dyn IncrementalMechanism>
        };
        let points = stream(12, d, seed.wrapping_add(1));
        assert_observe_into_equivalent(build(), build(), &points);
    }

    #[test]
    fn generic_erm_default_observe_into_equals_observe(seed in any::<u64>()) {
        // PrivIncErm has no override — this pins the trait's default impl.
        let p = params();
        let build = || {
            Box::new(PrivIncErm::new(
                Box::new(SquaredLoss),
                Box::new(NoisyGdSolver { iters: 8, beta: 0.1 }),
                Box::new(L2Ball::unit(3)),
                12,
                &p,
                TauRule::Fixed(4),
                NoiseRng::seed_from_u64(seed),
            )
            .unwrap()) as Box<dyn IncrementalMechanism>
        };
        let points = stream(12, 3, seed.wrapping_add(1));
        assert_observe_into_equivalent(build(), build(), &points);
    }

    #[test]
    fn engine_observe_into_equals_observe(seed in any::<u64>(), shards in 1usize..4) {
        let p = params();
        let build = |parallel: bool| {
            let mut engine = ShardedEngine::new(EngineConfig { num_shards: shards, seed, parallel })
                .unwrap();
            engine.spawn_sessions(0..3u64, &MechanismSpec::reg1_l2(3), 16, &p).unwrap();
            engine
        };
        let mut alloc = build(false);
        let mut reuse = build(false);
        let points = stream(15, 3, seed.wrapping_add(1));
        let mut buf = vec![f64::NAN; 3];
        for (i, z) in points.iter().enumerate() {
            let sid = (i % 3) as u64;
            let fresh = alloc.observe(sid, z).unwrap();
            reuse.observe_into(sid, z, &mut buf).unwrap();
            prop_assert_eq!(&fresh, &buf, "session {} point {}", sid, i);
        }
        // Unknown sessions and wrong-size buffers are rejected.
        prop_assert!(reuse.observe_into(99, &points[0], &mut buf).is_err());
        let mut short = vec![0.0; 2];
        prop_assert!(reuse.observe_into(0, &points[0], &mut short).is_err());
    }
}

/// A wrong-length release buffer must be rejected *before* the point is
/// consumed, so a caller can recover without losing stream capacity.
#[test]
fn wrong_buffer_rejected_without_consuming() {
    let p = params();
    let mut rng = NoiseRng::seed_from_u64(7);
    let mut mech =
        PrivIncReg1::new(Box::new(L2Ball::unit(3)), 8, &p, &mut rng, PrivIncReg1Config::default())
            .unwrap();
    let z = DataPoint::new(vec![0.5, 0.0, 0.0], 0.2);
    let mut short = vec![0.0; 2];
    assert!(mech.observe_into(&z, &mut short).is_err());
    assert_eq!(mech.t(), 0, "failed call must not consume the point");
    let mut ok = vec![0.0; 3];
    mech.observe_into(&z, &mut ok).unwrap();
    assert_eq!(mech.t(), 1);
}
