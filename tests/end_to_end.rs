//! End-to-end integration tests spanning the whole workspace: generators
//! → mechanisms → evaluation harness.

use private_incremental_regression::prelude::*;

fn params(eps: f64) -> PrivacyParams {
    PrivacyParams::approx(eps, 1e-6).unwrap()
}

fn dense_stream(n: usize, d: usize, seed: u64) -> Vec<DataPoint> {
    let mut rng = NoiseRng::seed_from_u64(seed);
    let model = LinearModel { theta_star: sparse_theta(d, d, 0.7, &mut rng), noise_std: 0.05 };
    linear_stream(n, d, CovariateKind::DenseSphere { radius: 0.95 }, &model, &mut rng)
}

#[test]
fn mech1_converges_to_oracle_as_epsilon_grows() {
    // The ε → ∞ limit of PrivIncReg1 is the exact incremental trajectory:
    // final excess should fall monotonically-ish in ε and be tiny at 1e6.
    let d = 4;
    let t = 128;
    let stream = dense_stream(t, d, 1);
    let mut finals = Vec::new();
    for eps in [1.0, 1e3, 1e6] {
        let mut rng = NoiseRng::seed_from_u64(2);
        let mut mech = PrivIncReg1::new(
            Box::new(L2Ball::unit(d)),
            t,
            &params(eps),
            &mut rng,
            PrivIncReg1Config { max_pgd_iters: 256, ..Default::default() },
        )
        .unwrap();
        let report =
            evaluate_squared_loss(&mut mech, &stream, Box::new(L2Ball::unit(d)), 16).unwrap();
        finals.push(report.final_excess());
    }
    assert!(finals[2] < 0.5, "near-noiseless limit should be near-exact: {finals:?}");
    assert!(finals[2] <= finals[0], "more budget should not hurt: {finals:?}");
}

#[test]
fn all_mechanisms_release_feasible_points_on_the_same_stream() {
    let d = 30;
    let t = 32;
    let mut rng = NoiseRng::seed_from_u64(3);
    let model = LinearModel { theta_star: sparse_theta(d, 2, 0.4, &mut rng), noise_std: 0.02 };
    let stream = linear_stream(t, d, CovariateKind::Sparse { k: 3 }, &model, &mut rng);
    let set = || -> Box<dyn ConvexSet> { Box::new(L1Ball::unit(d)) };

    let mut mechanisms: Vec<Box<dyn IncrementalMechanism>> = vec![
        Box::new(
            PrivIncReg1::new(set(), t, &params(1.0), &mut rng, PrivIncReg1Config::default())
                .unwrap(),
        ),
        Box::new(
            PrivIncReg2::new(
                set(),
                KSparseDomain::new(d, 3, 1.0).width_bound(),
                t,
                &params(1.0),
                &mut rng,
                PrivIncReg2Config { m_override: Some(8), ..Default::default() },
            )
            .unwrap(),
        ),
        Box::new(
            PrivIncErm::new(
                Box::new(SquaredLoss),
                Box::new(NoisyGdSolver { iters: 8, beta: 0.1 }),
                set(),
                t,
                &params(1.0),
                TauRule::Convex,
                rng.fork(),
            )
            .unwrap(),
        ),
        Box::new(ExactIncremental::new(set())),
    ];

    for mech in &mut mechanisms {
        for z in &stream {
            let theta = mech.observe(z).unwrap();
            let l1: f64 = theta.iter().map(|v| v.abs()).sum();
            assert!(l1 <= 1.0 + 1e-5, "{}: release left the constraint set", mech.name());
            assert!(theta.iter().all(|v| v.is_finite()), "{}: non-finite release", mech.name());
        }
        assert_eq!(mech.t(), t);
    }
}

#[test]
fn privacy_noise_is_actually_injected() {
    // The private trajectory must differ from the exact oracle trajectory
    // (a mechanism silently skipping its noise would pass utility tests
    // but violate privacy — this is the regression test for that).
    let d = 3;
    let t = 32;
    let stream = dense_stream(t, d, 4);
    let mut rng = NoiseRng::seed_from_u64(5);
    let mut mech = PrivIncReg1::new(
        Box::new(L2Ball::unit(d)),
        t,
        &params(1.0),
        &mut rng,
        PrivIncReg1Config::default(),
    )
    .unwrap();
    let mut oracle = ExactIncremental::new(Box::new(L2Ball::unit(d)));
    let mut max_gap = 0.0f64;
    for z in &stream {
        let a = mech.observe(z).unwrap();
        let b = oracle.observe(z).unwrap();
        let gap: f64 = a.iter().zip(&b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt();
        max_gap = max_gap.max(gap);
    }
    assert!(max_gap > 1e-3, "trajectories identical — no noise injected?");
}

#[test]
fn different_seeds_give_different_releases_same_seed_identical() {
    let d = 3;
    let t = 16;
    let stream = dense_stream(t, d, 6);
    let run = |seed: u64| {
        let mut rng = NoiseRng::seed_from_u64(seed);
        let mut mech = PrivIncReg1::new(
            Box::new(L2Ball::unit(d)),
            t,
            &params(1.0),
            &mut rng,
            PrivIncReg1Config::default(),
        )
        .unwrap();
        stream.iter().map(|z| mech.observe(z).unwrap()).collect::<Vec<_>>()
    };
    assert_eq!(run(7), run(7), "same seed must reproduce exactly");
    assert_ne!(run(7), run(8), "different seeds must differ");
}

#[test]
fn generic_transform_handles_logistic_classification() {
    let d = 5;
    let t = 48;
    let mut rng = NoiseRng::seed_from_u64(9);
    let theta_star = sparse_theta(d, 2, 0.9, &mut rng);
    let stream = classification_stream(
        t,
        d,
        CovariateKind::DenseSphere { radius: 0.95 },
        &theta_star,
        0.3,
        &mut rng,
    );
    let mut mech = PrivIncErm::new(
        Box::new(LogisticLoss),
        Box::new(NoisyGdSolver { iters: 16, beta: 0.1 }),
        Box::new(L2Ball::unit(d)),
        t,
        &params(2.0),
        TauRule::Convex,
        rng.fork(),
    )
    .unwrap();
    let report =
        evaluate_generic(&mut mech, &stream, &LogisticLoss, &L2Ball::unit(d), 12, 1500).unwrap();
    // Sanity: the excess is finite and below the trivial bound 2TL‖C‖.
    let trivial_bound = 2.0 * t as f64 * LogisticLoss.lipschitz(1.0) * 1.0;
    assert!(report.max_excess() < trivial_bound, "excess {}", report.max_excess());
}

#[test]
fn robust_mechanism_handles_contaminated_stream_end_to_end() {
    let d = 40;
    let t = 32;
    let k = 2;
    let mut rng = NoiseRng::seed_from_u64(10);
    let model = LinearModel { theta_star: sparse_theta(d, 2, 0.4, &mut rng), noise_std: 0.02 };
    let stream = mixture_stream(t, d, k, 0.4, &model, &mut rng);
    let dom = KSparseDomain::new(d, k, 1.0);
    let mut mech = RobustPrivIncReg2::new(
        Box::new(L1Ball::unit(d)),
        dom.width_bound(),
        Box::new(move |x: &[f64]| dom.contains(x, 1e-9)),
        t,
        &params(1.0),
        &mut rng,
        PrivIncReg2Config { m_override: Some(8), ..Default::default() },
    )
    .unwrap();
    for z in &stream {
        let theta = mech.observe(z).unwrap();
        let l1: f64 = theta.iter().map(|v| v.abs()).sum();
        assert!(l1 <= 1.0 + 1e-5);
    }
    // Roughly 40% of points should have been substituted.
    let frac = mech.substituted() as f64 / t as f64;
    assert!(frac > 0.1 && frac < 0.8, "substitution fraction {frac}");
}

#[test]
fn hybrid_tree_supports_unbounded_streams_for_statistics() {
    // Not a regression mechanism per se, but the footnote-13 path: the
    // hybrid mechanism lets the gradient statistics run without a known T.
    let params = params(1.0);
    let mut mech = HybridMechanism::new(4, 1.0, &params, NoiseRng::seed_from_u64(11)).unwrap();
    let mut rng = NoiseRng::seed_from_u64(12);
    for _ in 0..300 {
        let x = rng.unit_sphere(4);
        mech.update(&x).unwrap();
    }
    assert_eq!(mech.len(), 300);
    assert!(mech.query().iter().all(|v| v.is_finite()));
}
