//! Steady-state allocation audit for the engine observe path.
//!
//! The paper's headline systems property is per-step work independent of
//! `t` with `O(d² log T)` space (§1.1, Algorithm 2) — but that only
//! materializes as throughput if the hot loop is FLOP-bound, not
//! allocator-bound. This test installs a counting `#[global_allocator]`
//! and proves the invariant the whole `_into` refactor exists for: after
//! warmup, driving `PrivIncReg1` and `PrivIncReg2` sessions (at two
//! different ambient dimensions) through `ShardedEngine::observe_into`
//! performs **zero heap allocations per point** — tree updates, sketch
//! embedding, gradient assembly, and the full ridged-FISTA descent all
//! run on mechanism-owned scratch.
//!
//! The file holds exactly one `#[test]` so no concurrent test can touch
//! the allocator while the steady-state window is being measured.

use private_incremental_regression::prelude::*;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// `System` wrapped with allocation/reallocation counters.
struct CountingAllocator;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static REALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        REALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn total_heap_events() -> u64 {
    ALLOCS.load(Ordering::SeqCst) + REALLOCS.load(Ordering::SeqCst)
}

#[test]
fn engine_observe_path_is_allocation_free_in_steady_state() {
    let params = PrivacyParams::approx(1.0, 1e-6).unwrap();
    // Single shard, inline execution: the measurement must not cross
    // thread spawns (worker threads allocate stacks, not release math).
    let mut engine =
        ShardedEngine::new(EngineConfig { num_shards: 1, seed: 7, parallel: false }).unwrap();
    let t_max = 1usize << 32; // inexhaustible horizon

    // Three sessions: both paper mechanisms, two ambient dimensions —
    // so the zero-alloc claim is not an artifact of one code path or of
    // a dimension that happens to fit some internal buffer.
    let d1 = 8;
    let d2 = 24;
    engine.spawn_session(1, &MechanismSpec::reg1_l2(d1), t_max, &params).unwrap();
    engine.spawn_session(2, &MechanismSpec::reg1_l2(d2), t_max, &params).unwrap();
    engine.spawn_session(3, &MechanismSpec::reg2_l1(d2, 1.0), t_max, &params).unwrap();

    let z1 = DataPoint::new(vec![0.4, 0.2, -0.1, 0.3, 0.0, 0.1, -0.2, 0.05], 0.3);
    let mut x2 = vec![0.0; d2];
    for (i, v) in x2.iter_mut().enumerate() {
        *v = 0.15 * (1.0 - 0.05 * i as f64);
    }
    let z2 = DataPoint::new(x2, -0.2);
    let mut release1 = vec![0.0; d1];
    let mut release2 = vec![0.0; d2];
    let mut release3 = vec![0.0; d2];

    // Sanity: the counter actually counts.
    let before_probe = total_heap_events();
    let probe = vec![0u8; 4096];
    assert!(total_heap_events() > before_probe, "counting allocator is not installed");
    drop(probe);

    // Warmup: lets one-time lazy state (allocator arenas, fmt machinery,
    // the mechanisms' first tree completions) settle.
    for _ in 0..64 {
        engine.observe_into(1, &z1, &mut release1).unwrap();
        engine.observe_into(2, &z2, &mut release2).unwrap();
        engine.observe_into(3, &z2, &mut release3).unwrap();
    }

    // Steady state: not one heap event across 256 points per session.
    for (sid, z, release, label) in [
        (1u64, &z1, &mut release1, "PrivIncReg1 d=8"),
        (2, &z2, &mut release2, "PrivIncReg1 d=24"),
        (3, &z2, &mut release3, "PrivIncReg2 d=24"),
    ] {
        let before = total_heap_events();
        for _ in 0..256 {
            engine.observe_into(sid, z, release).unwrap();
        }
        let events = total_heap_events() - before;
        assert_eq!(
            events, 0,
            "steady-state observe path for {label} performed {events} heap allocations \
             over 256 points"
        );
        assert!(release.iter().all(|v| v.is_finite()), "{label} released a non-finite value");
    }

    // Batch path: `observe_batch_into` must be zero-alloc for the whole
    // batch, not just per point — the mechanism hoists its per-batch
    // constants and writes every release into the caller's flat buffer.
    const BATCH: usize = 32;
    let batch1: Vec<DataPoint> = (0..BATCH).map(|_| z1.clone()).collect();
    let batch2: Vec<DataPoint> = (0..BATCH).map(|_| z2.clone()).collect();
    let mut flat1 = vec![0.0; BATCH * d1];
    let mut flat2 = vec![0.0; BATCH * d2];
    let mut flat3 = vec![0.0; BATCH * d2];
    // Warmup: one batch per session (first call may complete new tree
    // levels whose node buffers are allocated lazily on level growth).
    engine.observe_batch_into(1, &batch1, &mut flat1).unwrap();
    engine.observe_batch_into(2, &batch2, &mut flat2).unwrap();
    engine.observe_batch_into(3, &batch2, &mut flat3).unwrap();
    for (sid, batch, flat, label) in [
        (1u64, &batch1, &mut flat1, "PrivIncReg1 d=8"),
        (2, &batch2, &mut flat2, "PrivIncReg1 d=24"),
        (3, &batch2, &mut flat3, "PrivIncReg2 d=24"),
    ] {
        let before = total_heap_events();
        for _ in 0..8 {
            engine.observe_batch_into(sid, batch, flat).unwrap();
        }
        let events = total_heap_events() - before;
        assert_eq!(
            events, 0,
            "steady-state batch path for {label} performed {events} heap allocations \
             over 8 batches of {BATCH}"
        );
        assert!(flat.iter().all(|v| v.is_finite()), "{label} released a non-finite value");
    }

    // Contrast: the allocating observe() pays at least the release vector
    // per point — this pins that the measurement itself is meaningful.
    let before = total_heap_events();
    let theta = engine.observe(1, &z1).unwrap();
    assert!(total_heap_events() > before, "allocating path should allocate the release");
    assert_eq!(theta.len(), d1);
}
