//! The batched-equals-sequential law: for every mechanism,
//! `observe_batch` must produce the *identical* estimator sequence a
//! sequential `observe` loop would — bit-for-bit under a fixed
//! [`NoiseRng`] seed, for any chunking of the stream. This is what makes
//! batching in the engine a pure throughput optimization with no semantic
//! (or privacy) consequences.

use private_incremental_regression::prelude::*;
use proptest::prelude::*;

/// A valid (§2-normalized) stream: ‖x‖ ≤ 0.9, |y| ≤ 1.
fn stream(n: usize, d: usize, seed: u64) -> Vec<DataPoint> {
    let mut rng = NoiseRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let x: Vec<f64> = (0..d).map(|_| rng.uniform_in(-1.0, 1.0)).collect();
            let norm = x.iter().map(|v| v * v).sum::<f64>().sqrt();
            let x: Vec<f64> = x.iter().map(|v| 0.9 * v / norm.max(1.0)).collect();
            let y = (0.7 * x[0]).clamp(-1.0, 1.0);
            DataPoint::new(x, y)
        })
        .collect()
}

/// Drive `sequential` point-by-point and `batched` chunk-by-chunk over
/// the same stream; the released sequences must agree exactly. The
/// flat-buffer `observe_batch_into` form is held to the same law on a
/// third instance.
fn assert_equivalent(
    mut sequential: Box<dyn IncrementalMechanism>,
    mut batched: Box<dyn IncrementalMechanism>,
    mut batched_into: Box<dyn IncrementalMechanism>,
    points: &[DataPoint],
    chunk: usize,
) {
    let d = sequential.dim();
    let seq: Vec<Vec<f64>> = points.iter().map(|z| sequential.observe(z).unwrap()).collect();
    let bat: Vec<Vec<f64>> =
        points.chunks(chunk).flat_map(|c| batched.observe_batch(c).unwrap()).collect();
    let mut flat = vec![0.0; chunk * d];
    let into: Vec<Vec<f64>> = points
        .chunks(chunk)
        .flat_map(|c| {
            let out = &mut flat[..c.len() * d];
            batched_into.observe_batch_into(c, out).unwrap();
            out.chunks_exact(d).map(<[f64]>::to_vec).collect::<Vec<_>>()
        })
        .collect();
    assert_eq!(seq.len(), bat.len());
    assert_eq!(seq.len(), into.len());
    for (t, (s, (b, f))) in seq.iter().zip(bat.iter().zip(&into)).enumerate() {
        assert_eq!(s, b, "release diverged at t={} (chunk={chunk})", t + 1);
        assert_eq!(s, f, "flat-buffer release diverged at t={} (chunk={chunk})", t + 1);
    }
    assert_eq!(sequential.t(), batched.t());
    assert_eq!(sequential.t(), batched_into.t());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn reg1_batched_equals_sequential(seed in any::<u64>(), chunk in 1usize..9) {
        let params = PrivacyParams::approx(1.0, 1e-6).unwrap();
        let build = || {
            let mut rng = NoiseRng::seed_from_u64(seed);
            Box::new(PrivIncReg1::new(
                Box::new(L2Ball::unit(4)),
                24,
                &params,
                &mut rng,
                PrivIncReg1Config::default(),
            )
            .unwrap()) as Box<dyn IncrementalMechanism>
        };
        let points = stream(24, 4, seed.wrapping_add(1));
        assert_equivalent(build(), build(), build(), &points, chunk);
    }

    #[test]
    fn reg2_batched_equals_sequential(seed in any::<u64>(), chunk in 1usize..7) {
        let params = PrivacyParams::approx(1.0, 1e-6).unwrap();
        let config = PrivIncReg2Config {
            m_override: Some(5),
            lift_iters: 40,
            max_pgd_iters: 24,
            ..Default::default()
        };
        let build = || {
            let mut rng = NoiseRng::seed_from_u64(seed);
            Box::new(PrivIncReg2::new(
                Box::new(L1Ball::unit(16)),
                2.0,
                12,
                &params,
                &mut rng,
                config,
            )
            .unwrap()) as Box<dyn IncrementalMechanism>
        };
        let points = stream(12, 16, seed.wrapping_add(2));
        assert_equivalent(build(), build(), build(), &points, chunk);
    }

    #[test]
    fn erm_batched_equals_sequential(seed in any::<u64>(), chunk in 1usize..9) {
        let params = PrivacyParams::approx(1.0, 1e-6).unwrap();
        let build = || {
            Box::new(PrivIncErm::new(
                Box::new(SquaredLoss),
                Box::new(NoisyGdSolver { iters: 8, beta: 0.1 }),
                Box::new(L2Ball::unit(3)),
                16,
                &params,
                TauRule::Fixed(4),
                NoiseRng::seed_from_u64(seed),
            )
            .unwrap()) as Box<dyn IncrementalMechanism>
        };
        let points = stream(16, 3, seed.wrapping_add(3));
        assert_equivalent(build(), build(), build(), &points, chunk);
    }
}

#[test]
fn batch_rejection_is_atomic() {
    let params = PrivacyParams::approx(1.0, 1e-6).unwrap();
    let mut rng = NoiseRng::seed_from_u64(9);
    let mut mech = PrivIncReg1::new(
        Box::new(L2Ball::unit(3)),
        8,
        &params,
        &mut rng,
        PrivIncReg1Config::default(),
    )
    .unwrap();
    // A contract violation in the middle of the batch consumes nothing.
    let batch = vec![
        DataPoint::new(vec![0.3, 0.0, 0.0], 0.1),
        DataPoint::new(vec![2.0, 0.0, 0.0], 0.0), // ‖x‖ > 1
    ];
    assert!(mech.observe_batch(&batch).is_err());
    assert_eq!(mech.t(), 0);
    // A batch overflowing the horizon consumes nothing either.
    let long: Vec<DataPoint> = (0..9).map(|_| DataPoint::new(vec![0.2, 0.0, 0.0], 0.1)).collect();
    assert!(mech.observe_batch(&long).is_err());
    assert_eq!(mech.t(), 0);
    // Empty batches are no-ops.
    assert_eq!(mech.observe_batch(&[]).unwrap().len(), 0);
}

#[test]
fn erm_batch_overflow_consumes_nothing() {
    // PrivIncErm stores its history, so a partially-consumed batch would
    // double-count points on retry — overflow must reject atomically.
    let params = PrivacyParams::approx(1.0, 1e-6).unwrap();
    let mut mech = PrivIncErm::new(
        Box::new(SquaredLoss),
        Box::new(NoisyGdSolver { iters: 4, beta: 0.1 }),
        Box::new(L2Ball::unit(2)),
        4,
        &params,
        TauRule::Fixed(2),
        NoiseRng::seed_from_u64(1),
    )
    .unwrap();
    let long: Vec<DataPoint> = (0..5).map(|_| DataPoint::new(vec![0.2, 0.0], 0.1)).collect();
    assert!(mech.observe_batch(&long).is_err());
    assert_eq!(mech.t(), 0);
    assert_eq!(mech.observe_batch(&long[..4]).unwrap().len(), 4);
}
